//! Per-file symbol table: `use`-alias resolution and coarse local type hints.
//!
//! The rules must see through renaming imports (`use std::collections::HashMap
//! as Map` is still a hash map) and need a rough idea of a local's type (a
//! `sim_time` that is `f64` is accumulated with float arithmetic on purpose;
//! a `total_bytes: u64` is not). Neither requires real type inference: alias
//! tails and `let`-binding annotations cover the patterns the workspace uses.

use crate::ast::ParsedFile;
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Coarse classification of a local binding's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeHint {
    /// `f32`/`f64` (directly, or via an obvious float initializer).
    Float,
    /// An *ordered* map/set (`BTreeMap` etc.): iteration order is stable but
    /// key-dependent, which is still a float-accumulation ordering hazard.
    MapLike,
    /// A hash-based map/set whose iteration order differs per process — a
    /// genuine nondeterminism source for the taint rule.
    UnorderedMap,
    /// A `Mutex`/`RwLock`: `.lock()`/`.read()`/`.write()` on it produces a
    /// guard the lock-order rule must track.
    Lock,
    /// A persisted experiment record (`*Record`/`*Result`): its fields are
    /// nondeterminism-taint sinks.
    RecordLike,
    /// A growable heap buffer (`Vec`/`VecDeque`/`String`/`Box`/`Tensor`):
    /// cloning or growing one on a hot path is what the allocation-flow
    /// rules audit.
    Buffer,
    /// Anything else (including unknown).
    Other,
}

/// Symbol information for one file.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Local import name → last segment of the original path.
    aliases: BTreeMap<String, String>,
    /// Local binding name → type hint, from `let` annotations/initializers
    /// and typed `fn` parameters. Shadowing keeps the *widest* hazard: once a
    /// name is known `Float` anywhere in the file it stays `Float` (the rules
    /// only use hints to *suppress* findings, so over-approximating Float is
    /// the safe direction).
    hints: BTreeMap<String, TypeHint>,
}

/// Type names that are map-like for determinism purposes. Hash-based ones
/// additionally have *unordered* iteration (see [`UNORDERED_TYPES`]).
const MAP_TYPES: [&str; 6] =
    ["HashMap", "HashSet", "BTreeMap", "BTreeSet", "IndexMap", "IndexSet"];

/// Map types whose iteration order is randomized per process.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Lock types whose acquisition methods return scope-bound guards.
const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];

/// Heap-buffer types for the allocation-flow rules. `Tensor` is the
/// workspace's owned f32 array — cloning one is a full-model copy.
pub(crate) const BUFFER_TYPES: [&str; 5] = ["Vec", "VecDeque", "String", "Box", "Tensor"];

/// `true` when `name` is a persisted-record type for taint purposes.
fn is_record_type(name: &str) -> bool {
    name.len() > 6 && (name.ends_with("Record") || name.ends_with("Result"))
}

/// Classifies a resolved (post-alias) type name.
fn classify_type_name(name: &str) -> TypeHint {
    if name == "f32" || name == "f64" {
        TypeHint::Float
    } else if UNORDERED_TYPES.contains(&name) {
        TypeHint::UnorderedMap
    } else if MAP_TYPES.contains(&name) {
        TypeHint::MapLike
    } else if LOCK_TYPES.contains(&name) {
        TypeHint::Lock
    } else if BUFFER_TYPES.contains(&name) {
        TypeHint::Buffer
    } else if is_record_type(name) {
        TypeHint::RecordLike
    } else {
        TypeHint::Other
    }
}

impl SymbolTable {
    /// Builds the table from a parsed file.
    pub fn build(file: &ParsedFile) -> Self {
        let mut table = SymbolTable::default();
        for u in &file.uses {
            if let Some(orig) = u.path.last() {
                if orig != &u.name {
                    table.aliases.insert(u.name.clone(), orig.clone());
                }
            }
        }
        table.collect_hints(file);
        table
    }

    /// Resolves a name through at most one alias hop to the original type
    /// name it imports (`Map` → `HashMap`); unknown names map to themselves.
    pub fn canonical<'a>(&'a self, name: &'a str) -> &'a str {
        self.aliases.get(name).map_or(name, String::as_str)
    }

    /// The recorded hint for a local, if any.
    pub fn hint(&self, name: &str) -> Option<TypeHint> {
        self.hints.get(name).copied()
    }

    /// Records `name: hint`, never downgrading a hazard hint to Other.
    fn record(&mut self, name: &str, hint: TypeHint) {
        match self.hints.get(name) {
            Some(existing) if *existing != TypeHint::Other => {}
            _ => {
                self.hints.insert(name.to_string(), hint);
            }
        }
    }

    /// Scans token runs for `let name [: Ty] = init` and `name: Ty` inside
    /// `fn` signatures, recording hints. Token-level and heuristic by design.
    fn collect_hints(&mut self, file: &ParsedFile) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].is_ident("let") {
                // `let [mut] name …`
                let mut k = i + 1;
                if k < toks.len() && toks[k].is_ident("mut") {
                    k += 1;
                }
                let Some(name_tok) = toks.get(k) else { continue };
                if name_tok.kind != TokenKind::Ident {
                    continue; // destructuring patterns: no single hint
                }
                let name = name_tok.text.clone();
                k += 1;
                let hint = if k < toks.len() && toks[k].is_punct(":") {
                    self.hint_from_type(toks, k + 1)
                } else if k < toks.len() && toks[k].is_punct("=") {
                    hint_from_init(toks, k + 1, self)
                } else {
                    TypeHint::Other
                };
                self.record(&name, hint);
            } else if toks[i].is_punct(":")
                && i > 0
                && toks[i - 1].kind == TokenKind::Ident
                && (i < 2 || !toks[i - 2].is_punct(":"))
            {
                // A `name: Ty` pair (fn params, struct literals with typed
                // fields don't exist — struct literal fields are harmless to
                // record since hints only suppress findings).
                let hint = self.hint_from_type(toks, i + 1);
                if hint != TypeHint::Other {
                    let name = toks[i - 1].text.clone();
                    self.record(&name, hint);
                }
            }
        }
    }

    /// Classifies the type starting at token `at`.
    fn hint_from_type(&self, toks: &[crate::lexer::Token], mut at: usize) -> TypeHint {
        // Skip leading `&`, `&mut`, `'a`.
        while at < toks.len()
            && (toks[at].is_punct("&")
                || toks[at].is_punct("&&")
                || toks[at].is_ident("mut")
                || toks[at].kind == TokenKind::Lifetime)
        {
            at += 1;
        }
        let Some(t) = toks.get(at) else { return TypeHint::Other };
        if t.kind != TokenKind::Ident {
            return TypeHint::Other;
        }
        classify_type_name(self.canonical(&t.text))
    }
}

/// Classifies an initializer expression starting at token `at`: a float
/// literal (or one wrapped in a unary minus/paren) hints Float; calling
/// `Map::new`/`Mutex::new`-style constructors or writing a record struct
/// literal hints the corresponding hazard class.
fn hint_from_init(toks: &[crate::lexer::Token], mut at: usize, table: &SymbolTable) -> TypeHint {
    while at < toks.len() && (toks[at].is_punct("-") || toks[at].is_punct("(")) {
        at += 1;
    }
    let Some(t) = toks.get(at) else { return TypeHint::Other };
    match t.kind {
        TokenKind::Float => TypeHint::Float,
        // `vec![…]` constructs a heap buffer regardless of element type.
        TokenKind::Ident if t.is_ident("vec") && toks.get(at + 1).is_some_and(|n| n.is_punct("!")) => {
            TypeHint::Buffer
        }
        TokenKind::Ident => {
            let name = table.canonical(&t.text);
            let ctor = toks.get(at + 1).is_some_and(|n| n.is_punct("::"));
            let literal = toks.get(at + 1).is_some_and(|n| n.is_punct("{"));
            match classify_type_name(name) {
                TypeHint::RecordLike if ctor || literal => TypeHint::RecordLike,
                hint if ctor && hint != TypeHint::Other && hint != TypeHint::Float => hint,
                _ => TypeHint::Other,
            }
        }
        _ => TypeHint::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn table(src: &str) -> SymbolTable {
        SymbolTable::build(&parse(lex(src)))
    }

    #[test]
    fn alias_resolves_to_original_tail() {
        let t = table("use std::collections::HashMap as Map;\nfn f() { let m: Map<u32, u32> = Map::new(); }");
        assert_eq!(t.canonical("Map"), "HashMap");
        assert_eq!(t.canonical("Vec"), "Vec");
        assert_eq!(t.hint("m"), Some(TypeHint::UnorderedMap));
    }

    #[test]
    fn btree_is_ordered_hash_is_not() {
        let t = table("fn f(a: BTreeMap<u32, f32>, b: HashSet<u32>) {}");
        assert_eq!(t.hint("a"), Some(TypeHint::MapLike));
        assert_eq!(t.hint("b"), Some(TypeHint::UnorderedMap));
    }

    #[test]
    fn lock_hints_from_fields_and_ctors() {
        let t = table(
            "struct Pool { jobs: Mutex<Sender<Job>> }\nfn f() { let state = Mutex::new(LinkState::default()); let r: RwLock<u32> = RwLock::new(0); }",
        );
        assert_eq!(t.hint("jobs"), Some(TypeHint::Lock));
        assert_eq!(t.hint("state"), Some(TypeHint::Lock));
        assert_eq!(t.hint("r"), Some(TypeHint::Lock));
    }

    #[test]
    fn record_hints_from_annotation_and_literal() {
        let t = table(
            "fn f(rec: &mut RoundRecord) { let out = ExperimentResult { loss: 0.0 }; let plain = Config { x: 1 }; }",
        );
        assert_eq!(t.hint("rec"), Some(TypeHint::RecordLike));
        assert_eq!(t.hint("out"), Some(TypeHint::RecordLike));
        assert_eq!(t.hint("plain"), Some(TypeHint::Other));
    }

    #[test]
    fn float_hints_from_annotation_and_literal() {
        let t = table("fn f() { let mut sim_time = 0.0f64; let x: f32 = y; let n = 3; }");
        assert_eq!(t.hint("sim_time"), Some(TypeHint::Float));
        assert_eq!(t.hint("x"), Some(TypeHint::Float));
        assert_eq!(t.hint("n"), Some(TypeHint::Other));
        assert_eq!(t.hint("missing"), None);
    }

    #[test]
    fn fn_param_hints() {
        let t = table("fn f(rate_ms: f64, total_bytes: u64) {}");
        assert_eq!(t.hint("rate_ms"), Some(TypeHint::Float));
        // u64 params record nothing (Other hints from `:` pairs are skipped).
        assert_eq!(t.hint("total_bytes"), None);
    }

    #[test]
    fn float_hint_survives_integer_shadowing() {
        let t = table("fn f() { let dt: f64 = 0.1; }\nfn g() { let dt = 3; }");
        assert_eq!(t.hint("dt"), Some(TypeHint::Float));
    }

    #[test]
    fn reference_types_resolve_through_amp() {
        let t = table("fn f(weights: &mut f64) {}");
        assert_eq!(t.hint("weights"), Some(TypeHint::Float));
    }
}
