//! CLI entry point: `cargo run -p fedsu-xtask -- lint [--allow FILE] [PATH...]`.
//!
//! Exit codes: `0` clean, `1` unsuppressed violations or stale allow entries,
//! `2` usage or I/O error.

use fedsu_xtask::workspace::{self, SourceFile};
use fedsu_xtask::{lint_files, read_allow_file, ALLOW_FILE};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo run -p fedsu-xtask -- lint [--allow FILE] [PATH...]");
    eprintln!();
    eprintln!("Lints workspace .rs sources for determinism/safety hazards.");
    eprintln!("With no PATH arguments, walks the whole workspace.");
    eprintln!("Suppressions: {ALLOW_FILE} (rule/path/contains/reason entries).");
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut allow_override: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--allow" => match it.next() {
                Some(p) => allow_override = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --allow requires a file argument");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    // `cargo run -p` sets the cwd to the invocation dir; fall back to the
    // manifest dir baked in at compile time so the binary also works when
    // invoked from outside the workspace.
    let start = std::env::current_dir()
        .ok()
        .or_else(|| option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from));
    let Some(root) = start.as_deref().and_then(workspace::find_root) else {
        eprintln!("error: no workspace root (Cargo.toml with [workspace]) above cwd");
        return ExitCode::from(2);
    };

    let files = if paths.is_empty() {
        match workspace::collect_sources(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: walking workspace sources: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match explicit_files(&root, &paths) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    };

    // The checked-in default may legitimately be absent (fresh checkout with
    // no waivers), but an explicitly named file must exist: a typo'd path
    // would otherwise silently disable every suppression.
    if let Some(p) = &allow_override {
        if !p.is_file() {
            eprintln!("error: --allow {}: no such file", p.display());
            return ExitCode::from(2);
        }
    }
    let allow_path = allow_override.unwrap_or_else(|| root.join(ALLOW_FILE));
    let allow_text = match read_allow_file(&allow_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match lint_files(&files, &allow_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.violations {
        println!("{}:{}: error[{}]: {}", d.path, d.line, d.rule, d.message);
        println!("    | {}", d.snippet);
    }
    for e in &report.unused_allows {
        println!(
            "{}: error[stale-allow]: [[allow]] entry for rule `{}` matched nothing \
             (reason was: {}); remove it",
            e.path, e.rule, e.reason
        );
    }
    println!(
        "fedsu-xtask lint: {} file(s), {} violation(s), {} suppressed, {} stale allow(s)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.unused_allows.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Resolves explicitly-passed paths (files or directories) into lintable
/// sources, classified by their workspace-relative location.
fn explicit_files(root: &Path, paths: &[PathBuf]) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
        if abs.is_dir() {
            collect_dir(&abs, root, &mut out)?;
        } else if abs.is_file() {
            out.push(to_source(root, &abs));
        } else {
            return Err(format!("{}: no such file or directory", p.display()));
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursive `.rs` collection for an explicit directory argument.
fn collect_dir(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot read: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: cannot read: {e}", dir.display()))?.path();
        if path.is_dir() {
            collect_dir(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(to_source(root, &path));
        }
    }
    Ok(())
}

/// Builds a [`SourceFile`] for an explicit path, classifying it by its
/// location relative to the workspace root (paths outside the root are
/// treated as library code — the strictest interpretation).
fn to_source(root: &Path, abs: &Path) -> SourceFile {
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let kind = if rel.split('/').any(|seg| seg == "tests" || seg == "benches") {
        workspace::SourceKind::TestOrBench
    } else if rel.split('/').any(|seg| seg == "examples") {
        workspace::SourceKind::Example
    } else {
        workspace::SourceKind::Library
    };
    SourceFile { abs: abs.to_path_buf(), rel, kind }
}
