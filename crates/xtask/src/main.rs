//! CLI entry point:
//! `cargo run -p fedsu-xtask -- lint [--allow FILE] [--baseline FILE]
//! [--budget FILE] [--format text|sarif] [--fix-baseline] [--fix-budget]
//! [PATH...]`.
//!
//! Exit codes: `0` clean (new findings absent, no stale allow/baseline/
//! budget entries), `1` gate failure, `2` usage or I/O error.
//! `--fix-baseline` rewrites `crates/xtask/lint-baseline.toml` and
//! `--fix-budget` rewrites `crates/xtask/alloc-budget.toml` (preserving its
//! `[runtime]` ceilings) deterministically; both exit 0.

use fedsu_xtask::baseline::BASELINE_FILE;
use fedsu_xtask::budget::BUDGET_FILE;
use fedsu_xtask::rules::RULE_IDS;
use fedsu_xtask::workspace::{self, SourceFile};
use fedsu_xtask::{
    baseline, benchcheck, budget, explain, lint_files, read_gate_file, sarif, ALLOW_FILE,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("bench-check") => bench_check_command(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo run -p fedsu-xtask -- lint [--allow FILE] [--baseline FILE]\n\
         \x20                                       [--budget FILE] [--format text|sarif]\n\
         \x20                                       [--fix-baseline] [--fix-budget]\n\
         \x20                                       [--explain RULE] [PATH...]"
    );
    eprintln!();
    eprintln!("Lints workspace .rs sources for determinism/safety hazards.");
    eprintln!("With no PATH arguments, walks the whole workspace.");
    eprintln!("Suppressions: {ALLOW_FILE} (rule/path/contains/reason entries).");
    eprintln!("Ratchet:      {BASELINE_FILE} (regenerate with --fix-baseline).");
    eprintln!("Alloc budget: {BUDGET_FILE} (regenerate with --fix-budget).");
    eprintln!("--format sarif emits SARIF 2.1.0 on stdout for CI annotation.");
    eprintln!("--explain RULE prints a rule's rationale, example, and waiver policy.");
    eprintln!();
    eprintln!(
        "       cargo run -p fedsu-xtask -- bench-check --current FILE\n\
         \x20                                       [--baseline FILE] [--tolerance PCT] [--fix]"
    );
    eprintln!("Perf ratchet for the kernel bench: compares within-run GFLOP/s ratios");
    eprintln!("(vs serial_reference) against {BENCH_BASELINE_FILE}; >PCT% drop fails.");
    eprintln!("--fix replaces the checked-in baseline with the current run.");
}

/// Checked-in kernel-bench baseline, relative to the workspace root.
const BENCH_BASELINE_FILE: &str = "BENCH_kernels.json";

fn bench_check_command(raw_args: &[String]) -> ExitCode {
    let mut current_path: Option<PathBuf> = None;
    let mut baseline_override: Option<PathBuf> = None;
    let mut tolerance = benchcheck::DEFAULT_TOLERANCE;
    let mut fix = false;
    let mut it = raw_args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--current" => match it.next() {
                Some(p) => current_path = Some(PathBuf::from(p)),
                None => return usage_error("--current requires a file argument"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_override = Some(PathBuf::from(p)),
                None => return usage_error("--baseline requires a file argument"),
            },
            "--tolerance" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(pct)) if pct >= 0.0 && pct < 100.0 => tolerance = pct / 100.0,
                _ => return usage_error("--tolerance requires a percentage in [0, 100)"),
            },
            "--fix" => fix = true,
            other => return usage_error(&format!("unknown bench-check argument `{other}`")),
        }
    }
    let Some(current_path) = current_path else {
        return usage_error(
            "bench-check needs --current FILE (run the kernels bench with \
             FEDSU_BENCH_OUT=FILE first)",
        );
    };

    let start = std::env::current_dir()
        .ok()
        .or_else(|| option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from));
    let Some(root) = start.as_deref().and_then(workspace::find_root) else {
        eprintln!("error: no workspace root (Cargo.toml with [workspace]) above cwd");
        return ExitCode::from(2);
    };
    let baseline_path = baseline_override.unwrap_or_else(|| root.join(BENCH_BASELINE_FILE));

    let current_text = match std::fs::read_to_string(&current_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: cannot read current run: {e}", current_path.display());
            return ExitCode::from(2);
        }
    };
    let current = match benchcheck::parse_json(&current_text).and_then(|d| benchcheck::distill(&d))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", current_path.display());
            return ExitCode::from(2);
        }
    };

    if fix {
        // Refuse to enshrine a diverging run even when asked to fix.
        if !current.all_bit_identical {
            eprintln!("error: refusing --fix: current run is not bit-identical");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&baseline_path, &current_text) {
            eprintln!("error: {}: cannot write baseline: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "fedsu-xtask bench-check: baseline regenerated from {} at {}",
            current_path.display(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: cannot read baseline: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let baseline =
        match benchcheck::parse_json(&baseline_text).and_then(|d| benchcheck::distill(&d)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };

    match benchcheck::check(&baseline, &current, tolerance) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            println!(
                "fedsu-xtask bench-check: {} configuration(s) compared (current simd \
                 level: {}), {} skipped (simd level differs from baseline), \
                 {} regression(s), tolerance {:.0}%",
                outcome.compared,
                current.simd_level,
                outcome.skipped_simd_mismatch,
                outcome.regressions.len(),
                tolerance * 100.0
            );
            for r in &outcome.regressions {
                eprintln!("error[bench-regression]: {r}");
            }
            if outcome.regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    print_usage();
    ExitCode::from(2)
}

/// Parsed `lint` flags.
struct LintArgs {
    allow_override: Option<PathBuf>,
    baseline_override: Option<PathBuf>,
    budget_override: Option<PathBuf>,
    format: OutputFormat,
    fix_baseline: bool,
    fix_budget: bool,
    explain: Option<String>,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum OutputFormat {
    Text,
    Sarif,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut out = LintArgs {
        allow_override: None,
        baseline_override: None,
        budget_override: None,
        format: OutputFormat::Text,
        fix_baseline: false,
        fix_budget: false,
        explain: None,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--allow" => {
                let p = it.next().ok_or("--allow requires a file argument")?;
                out.allow_override = Some(PathBuf::from(p));
            }
            "--baseline" => {
                let p = it.next().ok_or("--baseline requires a file argument")?;
                out.baseline_override = Some(PathBuf::from(p));
            }
            "--budget" => {
                let p = it.next().ok_or("--budget requires a file argument")?;
                out.budget_override = Some(PathBuf::from(p));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => out.format = OutputFormat::Text,
                Some("sarif") => out.format = OutputFormat::Sarif,
                Some(other) => return Err(format!("unknown format `{other}` (text|sarif)")),
                None => return Err("--format requires text|sarif".to_string()),
            },
            "--fix-baseline" => out.fix_baseline = true,
            "--fix-budget" => out.fix_budget = true,
            "--explain" => {
                let r = it.next().ok_or("--explain requires a rule name")?;
                out.explain = Some(r.clone());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            p => out.paths.push(PathBuf::from(p)),
        }
    }
    if (out.fix_baseline || out.fix_budget) && !out.paths.is_empty() {
        return Err(
            "--fix-baseline/--fix-budget regenerate whole-workspace ratchet \
             files; explicit PATH arguments would silently drop entries"
                .to_string(),
        );
    }
    Ok(out)
}

fn lint_command(raw_args: &[String]) -> ExitCode {
    let args = match parse_lint_args(raw_args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &args.explain {
        return match explain::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule `{rule}`; known rules: {}", RULE_IDS.join(", "));
                ExitCode::from(2)
            }
        };
    }

    // `cargo run -p` sets the cwd to the invocation dir; fall back to the
    // manifest dir baked in at compile time so the binary also works when
    // invoked from outside the workspace.
    let start = std::env::current_dir()
        .ok()
        .or_else(|| option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from));
    let Some(root) = start.as_deref().and_then(workspace::find_root) else {
        eprintln!("error: no workspace root (Cargo.toml with [workspace]) above cwd");
        return ExitCode::from(2);
    };

    let files = if args.paths.is_empty() {
        match workspace::collect_sources(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: walking workspace sources: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match explicit_files(&root, &args.paths) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    };

    // The checked-in defaults may legitimately be absent (fresh checkout
    // with no waivers / no debt), but an explicitly named file must exist: a
    // typo'd path would otherwise silently disable every suppression.
    for (flag, p) in [
        ("--allow", &args.allow_override),
        ("--baseline", &args.baseline_override),
        ("--budget", &args.budget_override),
    ] {
        if let Some(p) = p {
            if !p.is_file() {
                eprintln!("error: {flag} {}: no such file", p.display());
                return ExitCode::from(2);
            }
        }
    }
    let allow_path = args.allow_override.clone().unwrap_or_else(|| root.join(ALLOW_FILE));
    let allow_text = match read_gate_file(&allow_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path =
        args.baseline_override.clone().unwrap_or_else(|| root.join(BASELINE_FILE));
    let budget_path = args.budget_override.clone().unwrap_or_else(|| root.join(BUDGET_FILE));

    let baseline_text = match read_gate_file(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let budget_text = match read_gate_file(&budget_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.fix_baseline {
        return fix_baseline(&files, &allow_text, &budget_text, &baseline_path);
    }
    if args.fix_budget {
        return fix_budget(&files, &allow_text, &baseline_text, &budget_text, &budget_path);
    }

    let report = match lint_files(&files, &allow_text, &baseline_text, &budget_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.format == OutputFormat::Sarif {
        println!("{}", sarif::render(&report));
    } else {
        for d in &report.violations {
            println!("{}:{}: error[{}]: {}", d.path, d.line, d.rule, d.message);
            println!("    | {}", d.snippet);
        }
        for e in &report.unused_allows {
            println!(
                "{}: error[stale-allow]: [[allow]] entry for rule `{}` matched nothing \
                 (reason was: {}); remove it",
                e.path, e.rule, e.reason
            );
        }
        for e in &report.stale_baseline {
            println!(
                "{}:{}: error[stale-baseline]: [[finding]] entry for rule `{}` matched \
                 nothing — the finding moved or was fixed; rerun `lint --fix-baseline` \
                 and commit the shrunken file",
                e.path, e.line, e.rule
            );
        }
        for e in &report.stale_budget {
            println!(
                "{}:{}: error[stale-budget]: [[alloc]] entry for rule `{}` matched \
                 nothing — the allocation moved or was fixed; rerun `lint --fix-budget` \
                 and commit the shrunken file",
                e.path, e.line, e.rule
            );
        }
        println!(
            "fedsu-xtask lint: {} file(s), {} new violation(s), {} baselined, \
             {} budgeted, {} suppressed, {} stale allow(s), {} stale baseline \
             entr(ies), {} stale budget entr(ies)",
            report.files_scanned,
            report.violations.len(),
            report.baselined.len(),
            report.budgeted.len(),
            report.suppressed.len(),
            report.unused_allows.len(),
            report.stale_baseline.len(),
            report.stale_budget.len()
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `lint --fix-baseline`: lints against an empty baseline (the alloc budget
/// stays in force — its rules ratchet separately) and writes every remaining
/// non-allocation finding to `baseline_path`, deterministically sorted.
/// Exits 0 even when findings exist — recording them is the point.
fn fix_baseline(
    files: &[SourceFile],
    allow_text: &str,
    budget_text: &str,
    baseline_path: &Path,
) -> ExitCode {
    let report = match lint_files(files, allow_text, "", budget_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !report.unused_allows.is_empty() {
        eprintln!(
            "error: {} stale [[allow]] entr(ies); fix {ALLOW_FILE} before regenerating \
             the baseline",
            report.unused_allows.len()
        );
        return ExitCode::FAILURE;
    }
    let findings: Vec<_> = report
        .violations
        .iter()
        .filter(|d| !fedsu_xtask::rules::ALLOC_RULES.contains(&d.rule))
        .cloned()
        .collect();
    let text = baseline::render(&findings);
    if let Err(e) = std::fs::write(baseline_path, &text) {
        eprintln!("error: {}: cannot write baseline: {e}", baseline_path.display());
        return ExitCode::from(2);
    }
    println!(
        "fedsu-xtask lint: baseline regenerated with {} finding(s) at {}",
        findings.len(),
        baseline_path.display()
    );
    ExitCode::SUCCESS
}

/// `lint --fix-budget`: lints against an empty budget (the baseline stays in
/// force) and writes every allocation-family finding to `budget_path`,
/// carrying the existing `[runtime]` ceilings through unchanged.
fn fix_budget(
    files: &[SourceFile],
    allow_text: &str,
    baseline_text: &str,
    budget_text: &str,
    budget_path: &Path,
) -> ExitCode {
    // Preserve the hand-tuned runtime ceilings across regeneration.
    let runtime = match budget::parse(budget_text) {
        Ok(b) => b.runtime,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_files(files, allow_text, baseline_text, "") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !report.unused_allows.is_empty() {
        eprintln!(
            "error: {} stale [[allow]] entr(ies); fix {ALLOW_FILE} before regenerating \
             the budget",
            report.unused_allows.len()
        );
        return ExitCode::FAILURE;
    }
    let findings: Vec<_> = report
        .violations
        .iter()
        .filter(|d| fedsu_xtask::rules::ALLOC_RULES.contains(&d.rule))
        .cloned()
        .collect();
    let text = budget::render(&findings, &runtime);
    if let Err(e) = std::fs::write(budget_path, &text) {
        eprintln!("error: {}: cannot write budget: {e}", budget_path.display());
        return ExitCode::from(2);
    }
    println!(
        "fedsu-xtask lint: alloc budget regenerated with {} finding(s) at {}",
        findings.len(),
        budget_path.display()
    );
    ExitCode::SUCCESS
}

/// Resolves explicitly-passed paths (files or directories) into lintable
/// sources, classified by their workspace-relative location.
fn explicit_files(root: &Path, paths: &[PathBuf]) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
        if abs.is_dir() {
            collect_dir(&abs, root, &mut out)?;
        } else if abs.is_file() {
            out.push(to_source(root, &abs));
        } else {
            return Err(format!("{}: no such file or directory", p.display()));
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursive `.rs` collection for an explicit directory argument.
fn collect_dir(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot read: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: cannot read: {e}", dir.display()))?.path();
        if path.is_dir() {
            collect_dir(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(to_source(root, &path));
        }
    }
    Ok(())
}

/// Builds a [`SourceFile`] for an explicit path, classifying it by its
/// location relative to the workspace root (paths outside the root are
/// treated as library code — the strictest interpretation).
fn to_source(root: &Path, abs: &Path) -> SourceFile {
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let kind = if rel.split('/').any(|seg| seg == "tests" || seg == "benches") {
        workspace::SourceKind::TestOrBench
    } else if rel.split('/').any(|seg| seg == "examples") {
        workspace::SourceKind::Example
    } else {
        workspace::SourceKind::Library
    };
    SourceFile { abs: abs.to_path_buf(), rel, kind }
}
