//! Workspace discovery: finds the workspace root and enumerates every `.rs`
//! source the lint pass must cover, classifying each as library, example,
//! test, or bench code so rules can scope themselves correctly.

use std::path::{Path, PathBuf};

/// What kind of compilation target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `src/` of a crate — full rule set applies.
    Library,
    /// `examples/` — exempt from the library-only rules (unwrap).
    Example,
    /// `tests/` or `benches/` — exempt from the library-only rules.
    TestOrBench,
}

/// A source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path used in diagnostics and the allow file.
    pub rel: String,
    /// Target classification.
    pub kind: SourceKind,
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collects every lintable `.rs` file under the workspace root: the root
/// crate's `src/`, `examples/`, `tests/`, and each member under `crates/`
/// (excluding the xtask crate itself — it lints the product, not the tool —
/// and any `target/` build output).
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for top in ["src", "examples", "tests", "benches"] {
        walk(&root.join(top), root, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            if !member.is_dir() || member.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            for sub in ["src", "examples", "tests", "benches"] {
                walk(&member.join(sub), root, &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursively gathers `.rs` files under `dir` (no-op when absent).
fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if d.file_name().is_some_and(|n| n == "target") {
            continue;
        }
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(SourceFile { abs: path, kind: classify(&rel), rel });
            }
        }
    }
    Ok(())
}

/// Classifies a workspace-relative path into a [`SourceKind`].
fn classify(rel: &str) -> SourceKind {
    let parts: Vec<&str> = rel.split('/').collect();
    // Either `<dir>/...` at the root or `crates/<member>/<dir>/...`.
    let dir = if parts.first() == Some(&"crates") { parts.get(2) } else { parts.first() };
    match dir.copied() {
        Some("examples") => SourceKind::Example,
        Some("tests") | Some("benches") => SourceKind::TestOrBench,
        _ => SourceKind::Library,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_distinguishes_targets() {
        assert_eq!(classify("src/lib.rs"), SourceKind::Library);
        assert_eq!(classify("crates/fl/src/experiment.rs"), SourceKind::Library);
        assert_eq!(classify("examples/quickstart.rs"), SourceKind::Example);
        assert_eq!(classify("crates/nn/tests/conv_reference.rs"), SourceKind::TestOrBench);
        assert_eq!(classify("crates/bench/benches/tensor_ops.rs"), SourceKind::TestOrBench);
        assert_eq!(classify("tests/integration.rs"), SourceKind::TestOrBench);
    }
}
