//! The allocation budget: `crates/xtask/alloc-budget.toml`.
//!
//! The allocation-flow rules (`hot-alloc`, `loop-realloc`,
//! `redundant-clone` — see [`crate::allocflow`]) ratchet through this file
//! exactly like the other rules ratchet through `lint-baseline.toml`:
//! budgeted findings are tolerated, new ones fail the lint, and a fixed
//! finding leaves a stale entry that must be deleted via `lint
//! --fix-budget`. Keeping the two ratchets in separate files keeps their
//! review stories separate — shrinking the alloc budget is a perf win,
//! shrinking the baseline is a safety win.
//!
//! Beyond the `[[alloc]]` entries the file carries a `[runtime]` section:
//! per-round allocation ceilings cross-checked by `tests/alloc_budget.rs`
//! against the counting allocator in `fedsu-tensor::alloc_stats`. The
//! static entries say *where* the hot path allocates; the runtime ceilings
//! say *how much* it is allowed to. `--fix-budget` regenerates the entries
//! but preserves the ceilings, so tightening them is always a deliberate
//! hand edit.

use crate::baseline::{escape, unescape, BaselineEntry, BaselineParseError};
use crate::rules::{Diagnostic, ALLOC_RULES};
use std::collections::BTreeSet;

/// Default location of the budget, relative to the workspace root.
pub const BUDGET_FILE: &str = "crates/xtask/alloc-budget.toml";

/// Steady-round allocation ceilings, cross-checked at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeBudget {
    /// Maximum allocator calls a steady round may make.
    pub max_round_allocs: u64,
    /// Maximum bytes a steady round may request from the allocator.
    pub max_round_bytes: u64,
}

impl Default for RuntimeBudget {
    fn default() -> Self {
        // Generous first ceilings (a quick-scale round sits well under
        // these); ratchet them down by hand as the hot path sheds copies.
        RuntimeBudget { max_round_allocs: 50_000, max_round_bytes: 32 * 1024 * 1024 }
    }
}

/// Parsed `alloc-budget.toml`: runtime ceilings plus the static entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocBudget {
    /// The `[runtime]` ceilings (defaults when the section is absent).
    pub runtime: RuntimeBudget,
    /// The `[[alloc]]` findings the ratchet tolerates.
    pub entries: Vec<BaselineEntry>,
}

/// Parses the budget text.
///
/// # Errors
/// Returns a [`BaselineParseError`] (line numbers point into
/// `alloc-budget.toml`) for malformed lines, unknown keys, or entries
/// naming rules outside the allocation families.
pub fn parse(text: &str) -> Result<AllocBudget, BaselineParseError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Runtime,
        Alloc,
    }
    let mut section = Section::None;
    let mut current = BaselineEntry::default();
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut runtime = RuntimeBudget::default();
    let mut in_entry = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[alloc]]" {
            if in_entry {
                entries.push(validate(std::mem::take(&mut current), lineno)?);
            }
            in_entry = true;
            section = Section::Alloc;
            continue;
        }
        if line == "[runtime]" {
            if in_entry {
                entries.push(validate(std::mem::take(&mut current), lineno)?);
                in_entry = false;
            }
            section = Section::Runtime;
            continue;
        }
        if line.starts_with('[') {
            return Err(BaselineParseError {
                line: lineno,
                message: format!(
                    "unexpected table `{line}`; only [runtime] and [[alloc]] are supported"
                ),
            });
        }
        let Some(eq) = line.find('=') else {
            return Err(BaselineParseError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section {
            Section::None => {
                return Err(BaselineParseError {
                    line: lineno,
                    message: "key outside any [runtime]/[[alloc]] table".to_string(),
                });
            }
            Section::Runtime => {
                let parsed: u64 = value.parse().map_err(|_| BaselineParseError {
                    line: lineno,
                    message: format!("`{key}` must be a non-negative integer, got `{value}`"),
                })?;
                match key {
                    "max_round_allocs" => runtime.max_round_allocs = parsed,
                    "max_round_bytes" => runtime.max_round_bytes = parsed,
                    other => {
                        return Err(BaselineParseError {
                            line: lineno,
                            message: format!(
                                "unknown [runtime] key `{other}` (expected \
                                 max_round_allocs/max_round_bytes)"
                            ),
                        });
                    }
                }
            }
            Section::Alloc => {
                if key == "line" {
                    current.line = value.parse().map_err(|_| BaselineParseError {
                        line: lineno,
                        message: format!("`line` must be a positive integer, got `{value}`"),
                    })?;
                    continue;
                }
                let value = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| BaselineParseError {
                        line: lineno,
                        message: format!("value for `{key}` must be a double-quoted string"),
                    })?;
                let value = unescape(value);
                match key {
                    "rule" => current.rule = value,
                    "path" => current.path = value,
                    "snippet" => current.snippet = value,
                    other => {
                        return Err(BaselineParseError {
                            line: lineno,
                            message: format!(
                                "unknown key `{other}` (expected rule/path/line/snippet)"
                            ),
                        });
                    }
                }
            }
        }
    }
    if in_entry {
        entries.push(validate(current, text.lines().count())?);
    }
    Ok(AllocBudget { runtime, entries })
}

/// Rejects incomplete entries and rules outside the allocation families.
fn validate(entry: BaselineEntry, line: usize) -> Result<BaselineEntry, BaselineParseError> {
    if entry.rule.is_empty() || entry.path.is_empty() || entry.line == 0 {
        return Err(BaselineParseError {
            line,
            message: "every [[alloc]] needs non-empty rule, path, and a 1-based line".to_string(),
        });
    }
    if !ALLOC_RULES.contains(&entry.rule.as_str()) {
        return Err(BaselineParseError {
            line,
            message: format!(
                "rule `{}` does not belong in the alloc budget (expected one of: {})",
                entry.rule,
                ALLOC_RULES.join(", ")
            ),
        });
    }
    Ok(entry)
}

/// Splits allocation diagnostics against the budget: `(new, budgeted,
/// stale)`. Same exact-match semantics as the baseline ratchet.
pub fn apply(
    diags: Vec<Diagnostic>,
    budget: &AllocBudget,
    scanned: &BTreeSet<String>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<BaselineEntry>) {
    crate::baseline::apply(diags, &budget.entries, scanned)
}

/// Renders a deterministic budget for `diags`, carrying `runtime` through
/// verbatim so `--fix-budget` never loosens the ceilings.
pub fn render(diags: &[Diagnostic], runtime: &RuntimeBudget) -> String {
    let mut keys: Vec<(&str, usize, &str, &str)> = diags
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.rule, d.snippet.as_str()))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut out = String::new();
    out.push_str(
        "# fedsu-xtask allocation budget — hot-path allocations the ratchet\n\
         # tolerates, plus per-round runtime ceilings cross-checked by\n\
         # tests/alloc_budget.rs. Entries are regenerated by `cargo run -p\n\
         # fedsu-xtask -- lint --fix-budget` (the [runtime] ceilings are\n\
         # preserved); new hot-path allocations are NOT added here — hoist or\n\
         # reuse the buffer instead. Ceilings sit a little over 2x measured\n\
         # steady-round traffic: tight enough that a reintroduced per-round\n\
         # model copy trips tests/alloc_budget.rs, loose enough to absorb\n\
         # eval-round jitter. See DESIGN.md §9.4.\n\
         \n\
         [runtime]\n",
    );
    out.push_str(&format!("max_round_allocs = {}\n", runtime.max_round_allocs));
    out.push_str(&format!("max_round_bytes = {}\n", runtime.max_round_bytes));
    for (path, line, rule, snippet) in keys {
        out.push_str("\n[[alloc]]\n");
        out.push_str(&format!("rule = \"{}\"\n", escape(rule)));
        out.push_str(&format!("path = \"{}\"\n", escape(path)));
        out.push_str(&format!("line = {line}\n"));
        out.push_str(&format!("snippet = \"{}\"\n", escape(snippet)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, line: usize, snippet: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn render_then_parse_round_trips_with_runtime() {
        let runtime = RuntimeBudget { max_round_allocs: 123, max_round_bytes: 456 };
        let diags = vec![
            diag("hot-alloc", "crates/fl/src/experiment.rs", 7, "let v = vec![0.0; n];"),
            diag("redundant-clone", "crates/core/src/manager.rs", 3, "x.clone()"),
        ];
        let text = render(&diags, &runtime);
        let parsed = parse(&text).expect("rendered budget must re-parse");
        assert_eq!(parsed.runtime, runtime);
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].path, "crates/core/src/manager.rs");
    }

    #[test]
    fn missing_runtime_section_falls_back_to_defaults() {
        let parsed = parse("# empty\n").expect("comment-only parses");
        assert_eq!(parsed.runtime, RuntimeBudget::default());
        assert!(parsed.entries.is_empty());
    }

    #[test]
    fn non_alloc_rules_are_rejected() {
        let text = "[[alloc]]\nrule = \"panic-path\"\npath = \"a.rs\"\nline = 1\nsnippet = \"s\"\n";
        let err = parse(text).expect_err("panic-path is not an alloc rule");
        assert!(err.message.contains("does not belong"));
    }

    #[test]
    fn unknown_runtime_key_rejected() {
        let err = parse("[runtime]\nmax_round_frobs = 3\n").expect_err("unknown key");
        assert!(err.message.contains("max_round_frobs"));
    }

    #[test]
    fn apply_matches_exactly_like_the_baseline() {
        let runtime = RuntimeBudget::default();
        let budget = parse(&render(
            &[diag("hot-alloc", "a.rs", 2, "vec![0; 4]")],
            &runtime,
        ))
        .expect("parses");
        let scanned: BTreeSet<String> = ["a.rs".to_string()].into();
        let diags = vec![
            diag("hot-alloc", "a.rs", 2, "vec![0; 4]"),
            diag("loop-realloc", "a.rs", 9, "out.push(i);"),
        ];
        let (new, budgeted, stale) = apply(diags, &budget, &scanned);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "loop-realloc");
        assert_eq!(budgeted.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn fix_budget_render_is_deterministic() {
        let runtime = RuntimeBudget::default();
        let a = vec![diag("hot-alloc", "b.rs", 2, "s2"), diag("hot-alloc", "a.rs", 7, "s1")];
        let b = vec![diag("hot-alloc", "a.rs", 7, "s1"), diag("hot-alloc", "b.rs", 2, "s2")];
        assert_eq!(render(&a, &runtime), render(&b, &runtime));
    }
}
