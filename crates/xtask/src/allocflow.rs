//! Allocation-flow rules: where does the steady-state round loop allocate?
//!
//! Three rule families audit heap traffic (see DESIGN.md §9.4):
//!
//! * `hot-alloc` — an allocation expression (`Vec::new`, `vec![…]`,
//!   `with_capacity`, `.to_vec()`, `.collect()`, `format!`, `Box::new`, or
//!   `.clone()` of a known buffer) inside a function that is *steady-state*
//!   reachable from the round-loop roots. Reachability uses the
//!   [`crate::callgraph::CallGraph`] steady closure, which refuses to descend
//!   into setup-named callees (`new`, `from_*`, `build_*`, …) so one-time
//!   construction stays out of scope.
//! * `loop-realloc` — `.push()`/`.extend()`/`.insert()` inside a loop on a
//!   collection with no visible capacity reservation earlier in the
//!   function: each growth past capacity reallocates and memmoves.
//! * `redundant-clone` — `.clone()`/`.to_vec()` of a local binding that is
//!   never read again: the copy exists only to appease the borrow checker
//!   and the original could have been moved instead.
//!
//! Findings ratchet through `crates/xtask/alloc-budget.toml` (the
//! allocation analogue of `lint-baseline.toml`): known hot-path allocations
//! are budgeted, new ones fail the lint until either removed or explicitly
//! re-budgeted with `lint --fix-budget`. The counting allocator in
//! `fedsu-tensor::alloc_stats` cross-validates the static picture with real
//! per-round allocator traffic.
//!
//! Known imprecision (documented, accepted): the steady closure is
//! name-based, so a setup helper not matching the naming contract is
//! audited as hot; intra-function setup before the round loop in `run`
//! itself is indistinguishable from per-round work at this layer. Both
//! over-approximate — extra findings land in the budget, none are missed.

use crate::callgraph::CallGraph;
use crate::dataflow::block_close;
use crate::lexer::{Token, TokenKind};
use crate::resolve::{TypeHint, BUFFER_TYPES};
use crate::rules::{left_chain_idents, statement_span, Diagnostic};
use crate::scan::PreparedSource;
use std::collections::BTreeSet;

/// Method names that allocate a fresh owned buffer from a borrowed one.
const COPYING_METHODS: [&str; 2] = ["to_vec", "collect"];

/// Macros whose expansion allocates.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Rule `hot-alloc`: allocation expressions in steady-state hot functions.
pub fn check_hot_alloc(path: &str, src: &PreparedSource, graph: &CallGraph) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired = BTreeSet::new();
    for (ni, f) in src.file.fns.iter().enumerate() {
        if f.in_test || !graph.is_steady_hot(path, ni) {
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        for i in bs..=be.min(toks.len().saturating_sub(1)) {
            if src.tok_in_test(i) {
                continue;
            }
            let t = &toks[i];
            let what: Option<String> = if t.kind == TokenKind::Ident
                && ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some(format!("`{}!` allocates a fresh buffer", t.text))
            } else if is_buffer_ctor(toks, src, i) {
                Some(format!(
                    "`{}::{}` constructs a heap buffer",
                    src.symbols.canonical(&t.text),
                    toks[i + 2].text
                ))
            } else if is_capacity_ctor(toks, i) {
                Some(format!("`{}::with_capacity` allocates", t.text))
            } else if let Some(m) = copying_method_at(toks, i) {
                Some(format!("`.{m}()` copies into a fresh allocation"))
            } else if clones_buffer(toks, src, i, bs) {
                Some("`.clone()` of a heap buffer duplicates the whole backing allocation".into())
            } else {
                None
            };
            if let Some(what) = what {
                if fired.insert(t.line) {
                    out.push(Diagnostic::at(
                        src,
                        path,
                        t.line,
                        "hot-alloc",
                        format!(
                            "{what} in `{}`, which runs every round; hoist the buffer \
                             out of the loop, reuse a scratch allocation, or budget it \
                             in alloc-budget.toml",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// `Vec::new(…)`-style: a buffer type name, `::`, an associated fn, `(`.
fn is_buffer_ctor(toks: &[Token], src: &PreparedSource, i: usize) -> bool {
    let t = &toks[i];
    t.kind == TokenKind::Ident
        && BUFFER_TYPES.contains(&src.symbols.canonical(&t.text))
        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
        && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
        && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        // `Vec::len`-style never exists; but `String::from_utf8` etc. all
        // allocate, so any associated call on a buffer type counts except
        // pure-const ones — `new` with no args still allocates lazily-empty
        // Vecs only at first push, yet it *is* the allocation decision site.
        && toks[i + 2].text != "with_capacity"
}

/// Any `Type::with_capacity(` regardless of the type name: capacity
/// constructors allocate eagerly by definition.
fn is_capacity_ctor(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokenKind::Ident
        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
        && toks.get(i + 2).is_some_and(|n| n.is_ident("with_capacity"))
        && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
}

/// `.to_vec(` / `.collect(` at token `i` (the dot).
fn copying_method_at<'a>(toks: &'a [Token], i: usize) -> Option<&'a str> {
    if !toks[i].is_punct(".") {
        return None;
    }
    let m = toks.get(i + 1)?;
    if m.kind == TokenKind::Ident
        && COPYING_METHODS.contains(&m.text.as_str())
        && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
    {
        Some(&m.text)
    } else {
        None
    }
}

/// `.clone()` at the dot token `i` whose receiver chain roots in a binding
/// with a [`TypeHint::Buffer`] hint.
fn clones_buffer(toks: &[Token], src: &PreparedSource, i: usize, stop: usize) -> bool {
    if !(toks[i].is_punct(".")
        && toks.get(i + 1).is_some_and(|n| n.is_ident("clone"))
        && toks.get(i + 2).is_some_and(|n| n.is_punct("(")))
    {
        return false;
    }
    let chain = left_chain_idents(toks, i, stop);
    chain
        .last()
        .is_some_and(|root| src.symbols.hint(root) == Some(TypeHint::Buffer))
}

/// Rule `loop-realloc`: growth calls inside a loop with no reservation.
pub fn check_loop_realloc(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired = BTreeSet::new();
    for f in &src.file.fns {
        if f.in_test {
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        let be = be.min(toks.len().saturating_sub(1));
        for i in bs..=be {
            if src.tok_in_test(i) || !is_loop_keyword(toks, i) {
                continue;
            }
            let Some(open) = loop_block_open(toks, i, be) else { continue };
            let close = block_close(toks, open);
            for j in open..=close.min(be) {
                let Some(growth) = growth_call_at(toks, src, j) else { continue };
                let chain = left_chain_idents(toks, j, bs);
                let Some(recv) = chain.first().cloned() else { continue };
                if has_reservation(toks, bs, j, &recv) {
                    continue;
                }
                if fired.insert((toks[j].line, recv.clone())) {
                    out.push(Diagnostic::at(
                        src,
                        path,
                        toks[j].line,
                        "loop-realloc",
                        format!(
                            "`{recv}.{growth}()` grows inside a loop in `{}` with no \
                             capacity reservation; each growth past capacity \
                             reallocates and copies — reserve with \
                             `with_capacity`/`reserve` before the loop",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// `for`/`while`/`loop` keyword at `i` (HRTB `for<…>` excluded).
fn is_loop_keyword(toks: &[Token], i: usize) -> bool {
    let t = &toks[i];
    t.kind == TokenKind::Ident
        && matches!(t.text.as_str(), "for" | "while" | "loop")
        && !toks.get(i + 1).is_some_and(|n| n.is_punct("<"))
}

/// Index of the `{` opening the loop body: the first depth-0 `{` after the
/// keyword (Rust forbids bare struct literals in loop headers).
fn loop_block_open(toks: &[Token], kw: usize, be: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().take(be + 1).skip(kw + 1) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth = depth.saturating_sub(1);
        } else if t.is_punct("{") && depth == 0 {
            return Some(j);
        } else if t.is_punct(";") && depth == 0 {
            return None; // malformed / not actually a loop header
        }
    }
    None
}

/// A growth method call at dot token `j`: `.push(`/`.extend(` always count;
/// `.insert(` only when the receiver is a known buffer (map inserts don't
/// shift elements and maps have their own rule family).
fn growth_call_at<'a>(toks: &'a [Token], src: &PreparedSource, j: usize) -> Option<&'a str> {
    if !toks[j].is_punct(".") {
        return None;
    }
    let m = toks.get(j + 1)?;
    if m.kind != TokenKind::Ident || !toks.get(j + 2).is_some_and(|n| n.is_punct("(")) {
        return None;
    }
    match m.text.as_str() {
        "push" | "extend" => Some(&m.text),
        "insert" => {
            let chain = left_chain_idents(toks, j, 0);
            if chain
                .last()
                .is_some_and(|root| src.symbols.hint(root) == Some(TypeHint::Buffer))
            {
                Some(&m.text)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// `true` when a statement before token `until` both names `recv` and
/// reserves capacity (`with_capacity`, `reserve`, `reserve_exact`, or a
/// sized `vec![elem; n]` literal).
fn has_reservation(toks: &[Token], bs: usize, until: usize, recv: &str) -> bool {
    let mut i = bs;
    while i < until {
        if toks[i].kind == TokenKind::Ident && toks[i].text == recv {
            let (s, e) = statement_span(toks, i);
            let span = &toks[s..=e.min(until.saturating_sub(1))];
            if span.iter().any(|t| {
                t.kind == TokenKind::Ident
                    && matches!(t.text.as_str(), "with_capacity" | "reserve" | "reserve_exact")
            }) || sized_vec_after(toks, i)
            {
                return true;
            }
            i = e + 1;
        } else {
            i += 1;
        }
    }
    false
}

/// `recv = vec![elem; n]`-style: a sized `vec!` in the initializer starting
/// at the receiver ident `from`. Bracket-aware because the macro's own `;`
/// sits *inside* the statement ([`statement_span`] stops at the first `;`,
/// so the caller's span never contains it).
fn sized_vec_after(toks: &[Token], from: usize) -> bool {
    let mut j = from;
    while j + 1 < toks.len() {
        let t = &toks[j];
        if t.is_ident("vec") && toks[j + 1].is_punct("!") {
            let mut depth = 0usize;
            for u in toks.iter().skip(j + 2) {
                if u.is_punct("[") || u.is_punct("(") {
                    depth += 1;
                } else if u.is_punct("]") || u.is_punct(")") {
                    if depth <= 1 {
                        return false; // macro closed without a size separator
                    }
                    depth -= 1;
                } else if u.is_punct(";") {
                    return depth == 1;
                }
            }
            return false;
        }
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return false; // initializer ended without a vec! literal
        }
        j += 1;
    }
    false
}

/// Rule `redundant-clone`: `.clone()`/`.to_vec()` of a local that is dead
/// afterwards — the original could have been moved.
pub fn check_redundant_clone(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    for f in &src.file.fns {
        if f.in_test {
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        let be = be.min(toks.len().saturating_sub(1));
        let locals = local_lets(toks, bs, be);
        let loops = loop_spans(toks, bs, be);
        for i in bs..=be {
            if src.tok_in_test(i) || !toks[i].is_punct(".") {
                continue;
            }
            let Some(m) = toks.get(i + 1) else { continue };
            if !(matches!(m.text.as_str(), "clone" | "to_vec")
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
                && toks.get(i + 3).is_some_and(|n| n.is_punct(")")))
            {
                continue;
            }
            let chain = left_chain_idents(toks, i, bs);
            // Only direct `local.clone()` — a field or index projection may
            // alias storage the owner still needs.
            if chain.len() != 1 {
                continue;
            }
            let root = &chain[0];
            let Some(&let_idx) = locals.iter().find_map(|(n, idx)| (n == root).then_some(idx))
            else {
                continue;
            };
            if let_idx >= i {
                continue;
            }
            // Loop-carry: a clone inside a loop whose binding lives outside
            // it is read again on the next iteration even if no later token
            // mentions it.
            if loops.iter().any(|&(o, c)| o <= i && i <= c && !(o <= let_idx && let_idx <= c)) {
                continue;
            }
            let (_, stmt_end) = statement_span(toks, i);
            let used_after = (stmt_end + 1..=be).any(|k| {
                toks[k].kind == TokenKind::Ident
                    && toks[k].text == *root
                    && !(k > 0 && toks[k - 1].is_punct("."))
            });
            if !used_after {
                out.push(Diagnostic::at(
                    src,
                    path,
                    toks[i].line,
                    "redundant-clone",
                    format!(
                        "`{root}.{}()` but `{root}` is never read again in `{}`; \
                         move the original instead of copying it",
                        m.text, f.name
                    ),
                ));
            }
        }
    }
    out
}

/// `(name, let-token-index)` for every plain `let [mut] name` in the body.
fn local_lets(toks: &[Token], bs: usize, be: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in bs..=be {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        if let Some(name) = toks.get(k) {
            if name.kind == TokenKind::Ident
                && !toks
                    .get(k + 1)
                    .is_some_and(|n| n.is_punct("::") || n.is_punct("{") || n.is_punct("("))
            {
                out.push((name.text.clone(), i));
            }
        }
    }
    out
}

/// `(open, close)` token spans of every loop block in the body.
fn loop_spans(toks: &[Token], bs: usize, be: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in bs..=be {
        if is_loop_keyword(toks, i) {
            if let Some(open) = loop_block_open(toks, i, be) {
                out.push((open, block_close(toks, open)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare;

    const HOT: &str = "crates/fl/src/experiment.rs";

    fn hot_alloc(path: &str, src: &str) -> Vec<Diagnostic> {
        let p = prepare(src);
        let files = vec![(path.to_string(), &p.file)];
        let g = CallGraph::build(&files);
        check_hot_alloc(path, &p, &g)
    }

    #[test]
    fn hot_alloc_fires_on_vec_macro_and_collect_in_root() {
        let src = "pub fn run() {\n let v = vec![0.0; 8];\n let w: Vec<u32> = it.collect();\n}\n";
        let d = hot_alloc(HOT, src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!((d[0].line, d[1].line), (2, 3));
    }

    #[test]
    fn hot_alloc_fires_transitively_but_not_behind_setup() {
        let src = "pub fn run() { step(); build_model(); }\n\
                   fn step() { let b = Box::new(0u8); }\n\
                   fn build_model() { let v = Vec::<f32>::with_capacity(9); }\n";
        let d = hot_alloc(HOT, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("step"));
    }

    #[test]
    fn hot_alloc_sees_buffer_clone_but_not_scalar_clone() {
        let src = "pub fn run(cfg: &Config) {\n\
                   let snap = vec![0.0f32; 4];\n\
                   let a = snap.clone();\n\
                   let b = cfg.clone();\n}\n";
        let d = hot_alloc(HOT, src);
        // line 2: vec! macro; line 3: clone of a Buffer-hinted local.
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!((d[0].line, d[1].line), (2, 3));
        assert!(d[1].message.contains("clone"));
    }

    #[test]
    fn hot_alloc_is_silent_off_the_hot_path_and_in_tests() {
        let cold = "fn helper() { let v = vec![1, 2, 3]; }\n";
        assert!(hot_alloc("crates/nn/src/util.rs", cold).is_empty());
        let test = "#[test]\nfn t() { let v = vec![1]; }\n";
        assert!(hot_alloc(HOT, test).is_empty());
    }

    fn loop_realloc(src: &str) -> Vec<Diagnostic> {
        let p = prepare(src);
        check_loop_realloc("test.rs", &p)
    }

    #[test]
    fn loop_realloc_fires_without_reservation() {
        let src = "fn f(n: usize) {\n let mut out = Vec::new();\n for i in 0..n {\n  out.push(i);\n }\n}\n";
        let d = loop_realloc(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("out.push"));
    }

    #[test]
    fn loop_realloc_quiet_with_reservation_or_sized_vec() {
        let reserved = "fn f(n: usize) {\n let mut out = Vec::with_capacity(n);\n for i in 0..n { out.push(i); }\n}\n";
        assert!(loop_realloc(reserved).is_empty());
        let sized = "fn f(n: usize) {\n let mut out = vec![0usize; n];\n for i in 0..n { out.extend([i]); }\n}\n";
        assert!(loop_realloc(sized).is_empty());
        let late = "fn f(n: usize) {\n let mut out = Vec::new();\n out.reserve(n);\n for i in 0..n { out.push(i); }\n}\n";
        assert!(loop_realloc(late).is_empty());
    }

    #[test]
    fn loop_realloc_insert_needs_a_buffer_receiver() {
        // `insert` on a map is not element-shifting growth…
        let map = "fn f(m: &mut BTreeMap<u32, u32>) {\n for i in 0..4 { m.insert(i, i); }\n}\n";
        assert!(loop_realloc(map).is_empty());
        // …but on a Vec it is.
        let vecsrc = "fn f() {\n let mut v: Vec<u32> = Vec::new();\n loop { v.insert(0, 1); }\n}\n";
        let d = loop_realloc(vecsrc);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    fn redundant(src: &str) -> Vec<Diagnostic> {
        let p = prepare(src);
        check_redundant_clone("test.rs", &p)
    }

    #[test]
    fn redundant_clone_fires_when_source_is_dead() {
        let src = "fn f() {\n let name = make();\n consume(name.clone());\n}\n";
        let d = redundant(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("never read again"));
    }

    #[test]
    fn redundant_clone_quiet_when_source_lives_on() {
        let src = "fn f() {\n let name = make();\n consume(name.clone());\n log(&name);\n}\n";
        assert!(redundant(src).is_empty());
        // Field projections may alias storage the owner still needs.
        let field = "fn f(s: State) {\n consume(s.buf.clone());\n}\n";
        assert!(redundant(field).is_empty());
    }

    #[test]
    fn redundant_clone_respects_loop_carry() {
        // `frame` lives outside the loop: the clone on iteration k is read
        // (implicitly) on iteration k+1 even though no later token says so.
        let src = "fn f() {\n let frame = make();\n for _ in 0..3 {\n  send(frame.clone());\n }\n}\n";
        assert!(redundant(src).is_empty());
        // But a binding created inside the loop is dead at iteration end.
        let inner = "fn f() {\n for _ in 0..3 {\n  let buf = make();\n  send(buf.clone());\n }\n}\n";
        assert_eq!(redundant(inner).len(), 1);
    }

    #[test]
    fn redundant_to_vec_counts_like_clone() {
        let src = "fn f() {\n let xs = build();\n keep(xs.to_vec());\n}\n";
        let d = redundant(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("to_vec"));
    }
}
