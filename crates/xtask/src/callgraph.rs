//! Name-based call-graph approximation over parsed files.
//!
//! The panic-path rule needs "is this function transitively reachable from
//! the experiment round loop" — without type resolution, the useful (and
//! sound-for-linting) over-approximation is by name: a call to `foo` may
//! reach *every* function named `foo` in the workspace. That errs toward
//! flagging too much, which is the right direction for a panic audit; false
//! positives land in the baseline, never silently pass.

use crate::ast::ParsedFile;
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// Hot-path roots: function name + required path suffix of its file.
const ROOTS: [(&str, &str); 5] = [
    ("run", "fl/src/experiment.rs"),
    ("aggregate", "core/src/manager.rs"),
    ("prepare_uploads_into", "core/src/manager.rs"),
    // The reliable session protocol: everything a blocked send/recv can
    // reach (framing, chaos decorators, the bus) is panic-audited too.
    ("send_reliable", "transport/src/session.rs"),
    ("recv_reliable", "transport/src/session.rs"),
];

/// Pool-worker bodies: code reachable from these runs on a worker thread,
/// where a blocking channel receive can wedge the whole pool
/// (`channel-discipline` rule).
const WORKER_ROOTS: [(&str, &str); 1] = [("worker_loop", "tensor/src/par.rs")];

/// Worker-pool dispatch entry points: a call that can *reach* one of these
/// while a lock guard is held risks deadlocking dispatcher against workers
/// (`lock-order` rule).
const DISPATCH_TARGETS: [(&str, &str); 1] = [("run_chunks", "tensor/src/par.rs")];

/// Reachability result: for each file (by workspace-relative path), which
/// function indices (into `ParsedFile::fns`) are on a hot path / worker
/// path / steady-state path, plus the names of functions that can reach
/// pool dispatch.
#[derive(Debug, Default)]
pub struct CallGraph {
    hot: BTreeMap<String, BTreeSet<usize>>,
    workers: BTreeMap<String, BTreeSet<usize>>,
    steady: BTreeMap<String, BTreeSet<usize>>,
    dispatch_names: BTreeSet<String>,
}

/// `true` when a function name marks a one-time construction/setup path the
/// steady-state closure must not descend into: the allocation-flow rules
/// audit the per-round loop, and allocations behind `new`/`default`/
/// `from_*`/`with_*`/`build*`/`init*`/`setup*`/`load_*` run once per
/// experiment, not once per round. Name-based like the rest of the graph —
/// a hot helper hiding behind a setup-ish name is a documented imprecision.
pub(crate) fn is_setup_name(name: &str) -> bool {
    name == "new"
        || name == "default"
        || name == "build"
        || name.starts_with("from_")
        || name.starts_with("with_")
        || name.starts_with("build_")
        || name.starts_with("init")
        || name.starts_with("setup")
        || name.starts_with("load_")
        || name.starts_with("new_")
}

impl CallGraph {
    /// Builds reachability from the fixed roots over all `files`
    /// (`(workspace-relative path, parsed file)` pairs).
    pub fn build(files: &[(String, &ParsedFile)]) -> Self {
        // Node = (file index, fn index). Resolve call names to all
        // same-named nodes.
        let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, (_, pf)) in files.iter().enumerate() {
            for (ni, f) in pf.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, ni));
            }
        }

        // Forward call edges, computed once and shared by every traversal.
        let mut edges: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, (_, pf)) in files.iter().enumerate() {
            for (ni, f) in pf.fns.iter().enumerate() {
                let Some(body) = f.body else { continue };
                let mut targets = Vec::new();
                for callee in called_names(pf, body) {
                    if let Some(ts) = by_name.get(callee.as_str()) {
                        targets.extend(ts.iter().copied());
                    }
                }
                edges.insert((fi, ni), targets);
            }
        }

        let hot = forward_closure(files, &edges, &ROOTS, None);
        let workers = forward_closure(files, &edges, &WORKER_ROOTS, None);
        // The steady-state closure walks the same roots but refuses to enter
        // setup-named callees, so one-time construction paths stay out of
        // the allocation audit.
        let steady = forward_closure(files, &edges, &ROOTS, Some(&is_setup_name));

        // Reverse reachability: which functions can reach a dispatch target?
        let mut reverse: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        for (from, tos) in &edges {
            for to in tos {
                reverse.entry(*to).or_default().push(*from);
            }
        }
        let mut queue: Vec<(usize, usize)> = Vec::new();
        let mut reaches: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (fi, (rel, pf)) in files.iter().enumerate() {
            for (ni, f) in pf.fns.iter().enumerate() {
                let target = DISPATCH_TARGETS
                    .iter()
                    .any(|(n, suffix)| *n == f.name && rel.ends_with(suffix));
                if target && reaches.insert((fi, ni)) {
                    queue.push((fi, ni));
                }
            }
        }
        while let Some(node) = queue.pop() {
            if let Some(callers) = reverse.get(&node) {
                for &c in callers {
                    if reaches.insert(c) {
                        queue.push(c);
                    }
                }
            }
        }
        let dispatch_names: BTreeSet<String> = reaches
            .iter()
            .map(|&(fi, ni)| files[fi].1.fns[ni].name.clone())
            .collect();

        CallGraph { hot, workers, steady, dispatch_names }
    }

    /// `true` when function `fn_idx` of file `rel` is on a hot path.
    pub fn is_hot(&self, rel: &str, fn_idx: usize) -> bool {
        self.hot.get(rel).is_some_and(|s| s.contains(&fn_idx))
    }

    /// `true` when function `fn_idx` of file `rel` can run on a pool-worker
    /// thread.
    pub fn is_worker(&self, rel: &str, fn_idx: usize) -> bool {
        self.workers.get(rel).is_some_and(|s| s.contains(&fn_idx))
    }

    /// `true` when function `fn_idx` of file `rel` is on a *steady-state*
    /// hot path: reachable from the round-loop roots without passing through
    /// a setup-named callee. The allocation-flow rules audit exactly this
    /// set — construction-time allocations are one-time and exempt.
    pub fn is_steady_hot(&self, rel: &str, fn_idx: usize) -> bool {
        self.steady.get(rel).is_some_and(|s| s.contains(&fn_idx))
    }

    /// `true` when a call to `name` may transitively enter the worker-pool
    /// dispatch path (`run_chunks`).
    pub fn reaches_dispatch(&self, name: &str) -> bool {
        self.dispatch_names.contains(name)
    }

    /// `true` when any hot function exists at all (lets single-file lint
    /// runs skip the rule when no root is in scope).
    pub fn has_roots(&self) -> bool {
        !self.hot.is_empty()
    }
}

/// BFS over `edges` from every non-test function matching a `(name, path
/// suffix)` root, grouped by file path. When `skip` is given, targets whose
/// function name it matches are neither marked nor descended into (the
/// steady-state closure's setup-path exclusion); roots are always kept.
fn forward_closure(
    files: &[(String, &ParsedFile)],
    edges: &BTreeMap<(usize, usize), Vec<(usize, usize)>>,
    roots: &[(&str, &str)],
    skip: Option<&dyn Fn(&str) -> bool>,
) -> BTreeMap<String, BTreeSet<usize>> {
    let mut queue: Vec<(usize, usize)> = Vec::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (fi, (rel, pf)) in files.iter().enumerate() {
        for (ni, f) in pf.fns.iter().enumerate() {
            let is_root =
                roots.iter().any(|(n, suffix)| *n == f.name && rel.ends_with(suffix));
            if !f.in_test && is_root && seen.insert((fi, ni)) {
                queue.push((fi, ni));
            }
        }
    }
    while let Some(node) = queue.pop() {
        if let Some(targets) = edges.get(&node) {
            for &t in targets {
                if skip.is_some_and(|f| {
                    files
                        .get(t.0)
                        .and_then(|(_, pf)| pf.fns.get(t.1))
                        .is_some_and(|callee| f(&callee.name))
                }) {
                    continue;
                }
                if seen.insert(t) {
                    queue.push(t);
                }
            }
        }
    }
    let mut out: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (fi, ni) in seen {
        out.entry(files[fi].0.clone()).or_default().insert(ni);
    }
    out
}

/// Collects names syntactically called inside the token range `body`
/// (inclusive braces): `name(…)` free/assoc calls and `.name(…)` method
/// calls; `name!(…)` macros are not calls.
pub(crate) fn called_names(pf: &ParsedFile, body: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &pf.tokens;
    let (start, end) = body;
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if !next.is_punct("(") {
            continue;
        }
        let name = toks[i].text.as_str();
        if matches!(
            name,
            "if" | "while" | "for" | "match" | "return" | "loop" | "fn" | "move" | "in" | "as"
        ) {
            continue;
        }
        // `fn name(` directly inside the body is a nested definition.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        out.insert(name.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<(String, ParsedFile)>, CallGraph) {
        let parsed: Vec<(String, ParsedFile)> =
            srcs.iter().map(|(rel, s)| (rel.to_string(), parse(lex(s)))).collect();
        let refs: Vec<(String, &ParsedFile)> =
            parsed.iter().map(|(r, p)| (r.clone(), p)).collect();
        let g = CallGraph::build(&refs);
        (parsed, g)
    }

    #[test]
    fn transitive_reachability_from_run() {
        let (parsed, g) = graph(&[(
            "crates/fl/src/experiment.rs",
            "pub fn run() { step(); }\nfn step() { inner_helper(); }\nfn inner_helper() {}\nfn unrelated() {}",
        )]);
        let rel = &parsed[0].0;
        assert!(g.is_hot(rel, 0), "root itself is hot");
        assert!(g.is_hot(rel, 1));
        assert!(g.is_hot(rel, 2), "two hops from root");
        assert!(!g.is_hot(rel, 3), "uncalled fn is cold");
    }

    #[test]
    fn method_calls_cross_files() {
        let (_, g) = graph(&[
            ("crates/core/src/manager.rs", "impl FedSu { pub fn aggregate(&self) { self.helper_m(); } }"),
            ("crates/core/src/other.rs", "impl Other { pub fn helper_m(&self) { deep(); } }\nfn deep() {}"),
        ]);
        assert!(g.is_hot("crates/core/src/other.rs", 0), "same-named method reached");
        assert!(g.is_hot("crates/core/src/other.rs", 1));
    }

    #[test]
    fn macros_are_not_calls() {
        let (_, g) = graph(&[(
            "crates/fl/src/experiment.rs",
            "pub fn run() { log!(target_fn()); helper!(); }\nfn helper() {}",
        )]);
        // `helper!()` is a macro, not a call to fn helper — but
        // `target_fn()` inside the macro args still counts (token-level).
        assert!(!g.is_hot("crates/fl/src/experiment.rs", 1));
    }

    #[test]
    fn no_roots_in_scope() {
        let (_, g) = graph(&[("crates/nn/src/lib.rs", "pub fn run() { helper(); }\nfn helper() {}")]);
        assert!(!g.has_roots(), "`run` outside fl/src/experiment.rs is not a root");
    }

    #[test]
    fn worker_reachability_from_worker_loop() {
        let (parsed, g) = graph(&[(
            "crates/tensor/src/par.rs",
            "fn worker_loop() { run_job(); }\nfn run_job() {}\nfn run_chunks() { helper(); }\nfn helper() {}",
        )]);
        let rel = &parsed[0].0;
        assert!(g.is_worker(rel, 0));
        assert!(g.is_worker(rel, 1), "called from the worker body");
        assert!(!g.is_worker(rel, 2), "dispatch is not worker-side");
        assert!(!g.is_hot(rel, 0), "worker roots are not hot-path roots");
    }

    #[test]
    fn dispatch_reachability_is_reversed() {
        let (_, g) = graph(&[
            ("crates/tensor/src/par.rs", "pub fn run_chunks() {}"),
            (
                "crates/tensor/src/matmul.rs",
                "pub fn matmul_par() { run_chunks(); }\npub fn serial() {}",
            ),
        ]);
        assert!(g.reaches_dispatch("run_chunks"), "the target itself");
        assert!(g.reaches_dispatch("matmul_par"), "direct caller");
        assert!(!g.reaches_dispatch("serial"));
    }

    #[test]
    fn steady_closure_excludes_setup_callees() {
        let (parsed, g) = graph(&[(
            "crates/fl/src/experiment.rs",
            "pub fn run() { step(); build_model(); }\nfn step() { helper(); }\nfn helper() {}\nfn build_model() { deep() }\nfn deep() {}",
        )]);
        let rel = &parsed[0].0;
        assert!(g.is_steady_hot(rel, 0), "root stays steady");
        assert!(g.is_steady_hot(rel, 1));
        assert!(g.is_steady_hot(rel, 2), "plain helpers stay steady");
        assert!(!g.is_steady_hot(rel, 3), "setup-named callee is excluded");
        assert!(!g.is_steady_hot(rel, 4), "nothing behind a setup callee is steady");
        assert!(g.is_hot(rel, 3), "the plain hot closure still covers it");
        assert!(g.is_hot(rel, 4));
    }

    #[test]
    fn test_fns_never_seed_reachability() {
        let (_, g) = graph(&[(
            "crates/fl/src/experiment.rs",
            "#[cfg(test)]\nmod t { pub fn run() { secret(); } }\nfn secret() {}",
        )]);
        assert!(!g.has_roots());
    }
}
