//! A hand-rolled, std-only Rust lexer producing position-tagged tokens.
//!
//! The lint rules used to scan source *lines* with substring matching, which
//! could not see through multi-line expressions and had to re-implement
//! string/comment blanking per rule. This lexer tokenizes real Rust — raw
//! strings with arbitrary hash counts, nested block comments, lifetimes vs.
//! char literals, float literals vs. method calls on integers — so every
//! rule downstream works on tokens and is immune to formatting.
//!
//! Comments (including doc comments) and whitespace produce no tokens;
//! string-literal tokens keep their full source text so rules can still
//! measure message lengths (e.g. the `no-unwrap` documented-`expect` check).

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `as`). Keywords are not split
    /// out: rules match on text where needed.
    Ident,
    /// Raw identifier (`r#type`); text keeps the `r#` prefix.
    RawIdent,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer literal, including any suffix (`42`, `0xFF_u64`).
    Int,
    /// Float literal, including any suffix (`1.0`, `1e-3`, `2.5f32`).
    Float,
    /// Ordinary or byte string literal (`"…"`, `b"…"`); text keeps quotes.
    Str,
    /// Raw (byte) string literal (`r#"…"#`, `br"…"`); text keeps delimiters.
    RawStr,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, maximal-munch joined (`::`, `+=`, `..=`, `->`).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token's source text, verbatim.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in chars) of the token's first character.
    pub col: usize,
}

impl Token {
    /// `true` for an identifier (raw or plain) whose text equals `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self.kind, TokenKind::Ident | TokenKind::RawIdent) && self.text == s
    }

    /// `true` for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// The contents of a string literal (quotes, prefixes, and raw-string
    /// hashes stripped); `None` for non-string tokens.
    pub fn str_content(&self) -> Option<&str> {
        match self.kind {
            TokenKind::Str => {
                let t = self.text.strip_prefix('b').unwrap_or(&self.text);
                t.strip_prefix('"').and_then(|t| t.strip_suffix('"'))
            }
            TokenKind::RawStr => {
                let t = self.text.strip_prefix('b').unwrap_or(&self.text);
                let t = t.strip_prefix('r')?;
                let hashes = t.chars().take_while(|&c| c == '#').count();
                let t = &t[hashes..];
                let t = t.strip_prefix('"')?;
                let t = t.strip_suffix(&"#".repeat(hashes))?;
                t.strip_suffix('"')
            }
            _ => None,
        }
    }
}

/// Multi-char punctuation, longest first (maximal munch).
const PUNCTS: [&str; 25] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "..", "<<", ">>", "&&",
];

/// Internal cursor over the source chars.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// `true` for chars that may start an identifier.
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// `true` for chars that may continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens, skipping whitespace and all comments
/// (line, block — nested to any depth — and doc comments).
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur =
        Cursor { chars: source.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            '"' => out.push(lex_string(&mut cur, line, col, String::new())),
            'b' if cur.peek(1) == Some('"') => {
                cur.bump();
                out.push(lex_string(&mut cur, line, col, "b".to_string()));
            }
            'b' if cur.peek(1) == Some('\'') => {
                cur.bump();
                out.push(lex_char_literal(&mut cur, line, col, "b".to_string()));
            }
            'b' if cur.peek(1) == Some('r') && matches!(cur.peek(2), Some('"') | Some('#')) => {
                cur.bump();
                cur.bump();
                if let Some(tok) = lex_raw_string(&mut cur, line, col, "br".to_string()) {
                    out.push(tok);
                } else {
                    out.push(ident_from(&mut cur, line, col, "br".to_string()));
                }
            }
            'r' if matches!(cur.peek(1), Some('"') | Some('#')) => {
                cur.bump();
                if let Some(tok) = lex_raw_string(&mut cur, line, col, "r".to_string()) {
                    out.push(tok);
                } else if cur.peek(0) == Some('#') && cur.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier r#type.
                    cur.bump();
                    let mut text = "r#".to_string();
                    while let Some(c) = cur.peek(0) {
                        if is_ident_continue(c) {
                            text.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token { kind: TokenKind::RawIdent, text, line, col });
                } else {
                    out.push(ident_from(&mut cur, line, col, "r".to_string()));
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' closes with a quote right
                // after one (possibly escaped) char; a lifetime never does.
                let is_char = match cur.peek(1) {
                    Some('\\') => true,
                    Some(c1) if c1 != '\'' => cur.peek(2) == Some('\''),
                    _ => false,
                };
                if is_char {
                    out.push(lex_char_literal(&mut cur, line, col, String::new()));
                } else {
                    cur.bump();
                    let mut text = "'".to_string();
                    while let Some(c) = cur.peek(0) {
                        if is_ident_continue(c) {
                            text.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token { kind: TokenKind::Lifetime, text, line, col });
                }
            }
            _ if c.is_ascii_digit() => out.push(lex_number(&mut cur, line, col)),
            _ if is_ident_start(c) => out.push(ident_from(&mut cur, line, col, String::new())),
            _ => {
                // Punctuation: maximal munch against the multi-char table.
                let mut matched = None;
                for p in PUNCTS {
                    let plen = p.chars().count();
                    if (0..plen).all(|k| cur.peek(k) == p.chars().nth(k)) {
                        matched = Some(p);
                        break;
                    }
                }
                let text = match matched {
                    Some(p) => {
                        for _ in 0..p.chars().count() {
                            cur.bump();
                        }
                        p.to_string()
                    }
                    None => {
                        cur.bump();
                        c.to_string()
                    }
                };
                out.push(Token { kind: TokenKind::Punct, text, line, col });
            }
        }
    }
    out
}

/// Continues lexing an identifier whose first chars are already in `text`
/// (or none), consuming ident chars from the cursor.
fn ident_from(cur: &mut Cursor, line: usize, col: usize, mut text: String) -> Token {
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token { kind: TokenKind::Ident, text, line, col }
}

/// Lexes a `"…"` string body (opening quote still unconsumed), handling
/// escapes; `prefix` carries an already-consumed `b`.
fn lex_string(cur: &mut Cursor, line: usize, col: usize, mut text: String) -> Token {
    text.push('"');
    cur.bump();
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            break;
        }
    }
    Token { kind: TokenKind::Str, text, line, col }
}

/// Lexes a raw string after its `r`/`br` prefix was consumed. Returns
/// `None` (consuming nothing further) when the hashes are not followed by a
/// quote — the caller then falls back to a raw identifier or plain ident.
fn lex_raw_string(cur: &mut Cursor, line: usize, col: usize, mut text: String) -> Option<Token> {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return None;
    }
    for _ in 0..=hashes {
        // The hashes and the opening quote.
        text.push(cur.bump().expect("peeked chars are consumable"));
    }
    'body: while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                text.push(cur.bump().expect("peeked chars are consumable"));
            }
            break;
        }
    }
    Some(Token { kind: TokenKind::RawStr, text, line, col })
}

/// Lexes a `'…'` char/byte literal (opening quote unconsumed).
fn lex_char_literal(cur: &mut Cursor, line: usize, col: usize, mut text: String) -> Token {
    text.push('\'');
    cur.bump();
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '\'' {
            break;
        }
    }
    Token { kind: TokenKind::Char, text, line, col }
}

/// Lexes a numeric literal: int/float with underscores, base prefixes,
/// exponents, and type suffixes. `1.max(0)` stays an int followed by a
/// method call; `1..2` stays two ints around a range.
fn lex_number(cur: &mut Cursor, line: usize, col: usize) -> Token {
    let mut text = String::new();
    let mut kind = TokenKind::Int;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().expect("digit peeked"));
        text.push(cur.bump().expect("base char peeked"));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind, text, line, col };
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: `.` followed by a digit, or a bare trailing `.` that
    // is neither a range (`..`) nor a method/field access (`.ident`).
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some(c1) if c1.is_ascii_digit() => {
                kind = TokenKind::Float;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            Some('.') => {}
            Some(c1) if is_ident_start(c1) => {}
            _ => {
                kind = TokenKind::Float;
                text.push('.');
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokenKind::Float;
            text.push(cur.bump().expect("exponent char peeked"));
            if sign {
                text.push(cur.bump().expect("sign char peeked"));
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (u64, f32, usize…): the suffix decides int vs float.
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix.starts_with('f') {
        kind = TokenKind::Float;
    }
    text.push_str(&suffix);
    Token { kind, text, line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("use std::collections::HashMap;");
        assert_eq!(toks[0], (TokenKind::Ident, "use".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "std".to_string()));
        assert_eq!(toks[2], (TokenKind::Punct, "::".to_string()));
        assert_eq!(toks.last().expect("tokens present").1, ";");
    }

    #[test]
    fn comments_produce_no_tokens() {
        assert!(lex("// HashMap\n/* SystemTime */").is_empty());
        assert_eq!(lex("/* outer /* inner */ still comment */ x").len(), 1);
        assert!(lex("/// doc with Instant::now\n//! inner doc").is_empty());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let s = r##"quote "# inside"##;"####);
        let raw = toks.iter().find(|t| t.kind == TokenKind::RawStr).expect("raw string token");
        assert_eq!(raw.str_content(), Some(r##"quote "# inside"##));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn numbers_float_vs_int() {
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0xFF_u64")[0].0, TokenKind::Int);
        // Method call on an int is not a float.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".to_string()));
        // Range between ints stays two ints.
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[2].0, TokenKind::Int);
        // Tuple access is int after dot.
        let toks = kinds("x.0");
        assert_eq!(toks[2], (TokenKind::Int, "0".to_string()));
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn string_contents_preserved_for_measurement() {
        let toks = lex(".expect(\"short\")");
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("string token");
        assert_eq!(s.str_content(), Some("short"));
        let toks = lex("b\"bytes\"");
        assert_eq!(toks[0].str_content(), Some("bytes"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::RawIdent && t == "r#type"));
    }

    #[test]
    fn multichar_puncts_munch() {
        let toks = kinds("a += b ..= c -> d");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["+=", "..=", "->"]);
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        assert!(!lex("\"unterminated").is_empty());
        assert!(!lex("r#\"unterminated").is_empty());
        assert!(lex("/* unterminated").is_empty());
    }
}
