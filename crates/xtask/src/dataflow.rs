//! Intra-procedural dataflow over function bodies: lock-guard liveness, a
//! cross-function lock-acquisition graph, and forward nondeterminism taint.
//!
//! Everything here is token-level and deliberately approximate, in the same
//! spirit as the rest of the analyzer: over-approximate toward *flagging*
//! (false positives land in the ratchet baseline and get reviewed) and keep
//! the machinery simple enough to audit by hand.
//!
//! Three engines live here, consumed by the `lock-order`,
//! `channel-discipline`, and `nondeterminism-taint` rules in
//! [`crate::rules`]:
//!
//! * [`fn_guards`] — which lock guards (`let g = x.lock()` and friends) are
//!   live over which token ranges, with `drop(g)` and shadowing re-`let`s
//!   ending a guard early;
//! * [`WorkspaceFlow`] — the cross-file pass: a lock-acquisition graph
//!   (edges "lock A held while acquiring lock B", including one-level
//!   acquisition through calls) with cycle detection, plus the function-name
//!   sets used for one-level call inlining (taint sources, channel drains);
//! * [`fn_taint`] — forward taint from nondeterminism sources (unordered-map
//!   iteration, thread counts, wall clock) through `let` bindings,
//!   assignments, tuple destructuring, and `for` patterns, into the sinks
//!   the paper's reproducibility claims care about (record fields, wire
//!   payloads, float accumulators).

use crate::ast::ParsedFile;
use crate::lexer::{Token, TokenKind};
use crate::resolve::{SymbolTable, TypeHint};
use crate::rules::{left_chain_idents, statement_span};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that put bytes/values onto a channel (blocking or not, they grow
/// the queue).
pub const SEND_METHODS: [&str; 3] = ["send", "send_bytes", "send_bytes_to"];

/// Methods that block on a channel until data (or timeout) arrives.
pub const RECV_METHODS: [&str; 3] = ["recv", "recv_timeout", "recv_bytes"];

/// A lock guard binding live over a token range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Guard {
    /// The bound variable name.
    pub name: String,
    /// Identity of the lock it guards (nearest receiver identifier of the
    /// acquisition call — name-based, like the call graph).
    pub lock: String,
    /// Token index after which the guard is live (end of its `let`
    /// statement's scanned span).
    pub start: usize,
    /// Last token index at which the guard is live (enclosing block close,
    /// or an earlier `drop(name)` / shadowing `let name`).
    pub end: usize,
    /// 1-based line of the binding, for diagnostics.
    pub line: usize,
}

/// Clamps a `(start, end)` body range to the token stream.
fn clamp(body: (usize, usize), len: usize) -> (usize, usize) {
    (body.0.min(len.saturating_sub(1)), body.1.min(len.saturating_sub(1)))
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn block_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open` (or the last token).
pub fn paren_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Lock acquisition at token `i` (must be the `.` of `.lock()` /
/// `.read()` / `.write()` with an empty argument list): returns the lock's
/// name-based identity. `.read()`/`.write()` only count when the receiver
/// has a [`TypeHint::Lock`] hint, so `file.write()`-style I/O stays quiet.
pub fn acquisition_at(toks: &[Token], symbols: &SymbolTable, i: usize) -> Option<String> {
    if !toks[i].is_punct(".") {
        return None;
    }
    let m = toks.get(i + 1)?;
    if !(toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        && toks.get(i + 3).is_some_and(|t| t.is_punct(")")))
    {
        return None;
    }
    let is_lock = m.is_ident("lock");
    let is_rw = m.is_ident("read") || m.is_ident("write");
    if !is_lock && !is_rw {
        return None;
    }
    let (s, _) = statement_span(toks, i);
    let chain = left_chain_idents(toks, i, s.saturating_sub(1));
    let receiver = chain.first().cloned();
    if is_rw && receiver.as_deref().map(|r| symbols.hint(r)) != Some(Some(TypeHint::Lock)) {
        return None;
    }
    Some(receiver.unwrap_or_else(|| "<lock>".to_string()))
}

/// Channel operation at token `i` (the `.` of `.send*()` / `.recv*()`):
/// returns `("send" | "recv", method name)`. `try_*` variants are
/// non-blocking and bounded, and are deliberately not matched.
pub fn channel_op_at(toks: &[Token], i: usize) -> Option<(&'static str, String)> {
    if !toks[i].is_punct(".") {
        return None;
    }
    let m = toks.get(i + 1)?;
    if m.kind != TokenKind::Ident || !toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let name = m.text.as_str();
    if SEND_METHODS.contains(&name) {
        Some(("send", m.text.clone()))
    } else if RECV_METHODS.contains(&name) {
        Some(("recv", m.text.clone()))
    } else {
        None
    }
}

/// Computes the lock guards bound inside `body` with their live token
/// ranges. A binding counts as a guard when the scanned span of its
/// initializer (which stops at the first `{`, so acquisitions inside nested
/// blocks belong to the inner `let`) contains a lock acquisition. Liveness
/// runs to the close of the innermost enclosing block, ended early by
/// `drop(name)` or a shadowing `let name`.
pub fn fn_guards(toks: &[Token], symbols: &SymbolTable, body: (usize, usize)) -> Vec<Guard> {
    if toks.is_empty() {
        return Vec::new();
    }
    let (bs, be) = clamp(body, toks.len());
    let mut blocks: Vec<usize> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    for i in bs..=be {
        let t = &toks[i];
        if t.is_punct("{") {
            blocks.push(i);
        } else if t.is_punct("}") {
            blocks.pop();
        } else if t.is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(nt) = toks.get(k) else { continue };
            // Only plain-identifier patterns can bind a guard; `let Ok(g)`
            // and tuple patterns are skipped (known imprecision).
            if nt.kind != TokenKind::Ident
                || toks.get(k + 1).is_some_and(|t| t.is_punct("(") || t.is_punct("::"))
            {
                continue;
            }
            let (_, e) = statement_span(toks, i);
            let Some(eq) = (k + 1..=e).find(|&j| toks[j].is_punct("=")) else { continue };
            let acq = (eq + 1..=e).find_map(|j| acquisition_at(toks, symbols, j));
            if let Some(lock) = acq {
                let scope_end = blocks.last().map_or(be, |&o| block_close(toks, o).min(be));
                guards.push(Guard {
                    name: nt.text.clone(),
                    lock,
                    start: e,
                    end: scope_end,
                    line: nt.line,
                });
            }
        }
    }
    for g in &mut guards {
        for j in (g.start + 1)..g.end {
            let ended = (toks[j].is_ident("drop")
                && toks.get(j + 1).is_some_and(|t| t.is_punct("("))
                && toks.get(j + 2).is_some_and(|t| t.is_ident(&g.name))
                && toks.get(j + 3).is_some_and(|t| t.is_punct(")")))
                || (toks[j].is_ident("let") && {
                    let mut k = j + 1;
                    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                        k += 1;
                    }
                    toks.get(k).is_some_and(|t| t.is_ident(&g.name))
                });
            if ended {
                g.end = j;
                break;
            }
        }
    }
    guards
}

/// One site where holding `held` and acquiring `acquired` participates in a
/// lock-order cycle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdgeSite {
    /// Workspace-relative path of the acquiring file.
    pub path: String,
    /// 1-based line of the acquisition (or the call that acquires).
    pub line: usize,
    /// Lock already held.
    pub held: String,
    /// Lock acquired under it.
    pub acquired: String,
}

/// Cross-file dataflow facts shared by the rule pass: lock-order cycle
/// sites, and the function-name sets used for one-level call inlining.
#[derive(Debug, Default)]
pub struct WorkspaceFlow {
    /// Acquisition sites on a cyclic lock-order edge.
    pub cycle_edges: Vec<LockEdgeSite>,
    /// Functions whose body reads a nondeterminism source directly; a call
    /// to one of these names propagates taint (one inlining level).
    pub tainted_fns: BTreeSet<String>,
    /// Functions whose body performs a blocking channel receive; a call to
    /// one of these names counts as a drain on the path.
    pub drain_fns: BTreeSet<String>,
}

/// Rust keywords that look like calls at the token level.
const CALLISH_KEYWORDS: [&str; 10] =
    ["if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as"];

impl WorkspaceFlow {
    /// Builds the cross-file pass over `files` (same input shape as
    /// [`crate::callgraph::CallGraph::build`]).
    pub fn build(files: &[(String, &ParsedFile)]) -> Self {
        // Per function name: locks acquired directly, and names it calls.
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        // Acquisitions under a held guard, and calls under a held guard.
        let mut local_edges: Vec<LockEdgeSite> = Vec::new();
        let mut guarded_calls: Vec<(String, String, String, usize)> = Vec::new();
        let mut tainted_fns = BTreeSet::new();
        let mut drain_fns = BTreeSet::new();

        for (rel, pf) in files {
            let symbols = SymbolTable::build(pf);
            let toks = &pf.tokens;
            for f in &pf.fns {
                if f.in_test {
                    continue;
                }
                let Some(body) = f.body else { continue };
                let (bs, be) = clamp(body, toks.len());
                let guards = fn_guards(toks, &symbols, body);
                let held_at = |i: usize| -> Vec<&Guard> {
                    guards.iter().filter(|g| i > g.start && i <= g.end).collect()
                };
                for i in bs..=be {
                    if let Some(lock) = acquisition_at(toks, &symbols, i) {
                        direct.entry(f.name.clone()).or_default().insert(lock.clone());
                        for g in held_at(i) {
                            if g.lock != lock {
                                local_edges.push(LockEdgeSite {
                                    path: rel.clone(),
                                    line: toks[i].line,
                                    held: g.lock.clone(),
                                    acquired: lock.clone(),
                                });
                            }
                        }
                    }
                    if matches!(channel_op_at(toks, i), Some(("recv", _))) {
                        drain_fns.insert(f.name.clone());
                    }
                    if toks[i].kind == TokenKind::Ident
                        && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                        && !CALLISH_KEYWORDS.contains(&toks[i].text.as_str())
                        && !(i > 0 && toks[i - 1].is_ident("fn"))
                    {
                        calls.entry(f.name.clone()).or_default().insert(toks[i].text.clone());
                        for g in held_at(i) {
                            guarded_calls.push((
                                toks[i].text.clone(),
                                g.lock.clone(),
                                rel.clone(),
                                toks[i].line,
                            ));
                        }
                    }
                }
                if direct_source_in(toks, &symbols, (bs, be)).is_some() {
                    tainted_fns.insert(f.name.clone());
                }
            }
        }

        // Transitive lock sets per function name (fixpoint over the
        // name-based call relation; the workspace call depth is tiny, so a
        // bounded number of rounds always converges).
        let mut trans = direct.clone();
        for _ in 0..32 {
            let mut changed = false;
            let snapshot = trans.clone();
            for (name, callees) in &calls {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for c in callees {
                    if let Some(locks) = snapshot.get(c) {
                        add.extend(locks.iter().cloned());
                    }
                }
                if !add.is_empty() {
                    let entry = trans.entry(name.clone()).or_default();
                    let before = entry.len();
                    entry.extend(add);
                    changed |= entry.len() != before;
                }
            }
            if !changed {
                break;
            }
        }

        let mut edges = local_edges;
        for (callee, held, path, line) in guarded_calls {
            if let Some(locks) = trans.get(&callee) {
                for lock in locks {
                    if *lock != held {
                        edges.push(LockEdgeSite {
                            path: path.clone(),
                            line,
                            held: held.clone(),
                            acquired: lock.clone(),
                        });
                    }
                }
            }
        }

        // Keep only edges on a cycle: `held -> acquired` is cyclic when
        // `acquired` can reach `held` through the edge relation.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            adj.entry(e.held.as_str()).or_default().insert(e.acquired.as_str());
        }
        let cycle_edges: BTreeSet<LockEdgeSite> = edges
            .iter()
            .filter(|e| reachable(&adj, &e.acquired, &e.held))
            .cloned()
            .collect();

        WorkspaceFlow {
            cycle_edges: cycle_edges.into_iter().collect(),
            tainted_fns,
            drain_fns,
        }
    }
}

/// DFS reachability over the lock edge relation.
fn reachable(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Iterator methods whose order is nondeterministic on an unordered map.
const MAP_ITER_METHODS: [&str; 6] =
    ["values", "keys", "into_values", "into_keys", "iter", "into_iter"];

/// Scans `[s, e]` for a *direct* nondeterminism source (no taint-set
/// lookup): unordered-map iteration, thread identity/counts, wall clock.
/// Returns a human-readable description of the first source found.
fn direct_source_in(
    toks: &[Token],
    symbols: &SymbolTable,
    range: (usize, usize),
) -> Option<String> {
    let (s, e) = clamp(range, toks.len());
    for i in s..=e {
        let t = &toks[i];
        if t.is_punct(".") {
            if let Some(m) = toks.get(i + 1) {
                if m.kind == TokenKind::Ident && toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
                    if MAP_ITER_METHODS.contains(&m.text.as_str()) {
                        let (ss, _) = statement_span(toks, i);
                        let chain = left_chain_idents(toks, i, ss.saturating_sub(1));
                        if let Some(root) = chain.first() {
                            if symbols.hint(root) == Some(TypeHint::UnorderedMap) {
                                return Some(format!(
                                    "iteration over unordered map `{root}`"
                                ));
                            }
                        }
                    }
                    if m.is_ident("elapsed") {
                        return Some("wall-clock `.elapsed()` read".to_string());
                    }
                }
            }
        } else if t.kind == TokenKind::Ident {
            let canon = symbols.canonical(&t.text);
            if (canon == "Instant" || canon == "SystemTime")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                return Some(format!("wall-clock `{canon}::now()` read"));
            }
            if t.is_ident("available_parallelism") {
                return Some("hardware thread count".to_string());
            }
            if t.is_ident("thread")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("current"))
            {
                return Some("thread identity".to_string());
            }
        }
    }
    None
}

/// Scans `[s, e]` for anything tainted: a direct source, a tainted local, or
/// a call to a function known to read a source (one inlining level).
fn tainted_expr(
    toks: &[Token],
    symbols: &SymbolTable,
    range: (usize, usize),
    tainted: &BTreeSet<String>,
    tainted_fns: &BTreeSet<String>,
) -> Option<String> {
    if let Some(why) = direct_source_in(toks, symbols, range) {
        return Some(why);
    }
    let (s, e) = clamp(range, toks.len());
    for i in s..=e {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `.name` is a field or method, not a local read.
        let after_dot = i > 0 && toks[i - 1].is_punct(".");
        if !after_dot && tainted.contains(&t.text) {
            return Some(format!("tainted value `{}`", t.text));
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) && tainted_fns.contains(&t.text) {
            return Some(format!("call to `{}()`, which reads a nondeterminism source", t.text));
        }
    }
    None
}

/// Collects the identifiers bound by a pattern starting at `at` (after
/// `let` / `for`), stopping at a top-level `:` type annotation, `=`, or the
/// `in` keyword. Tuple and struct patterns contribute every identifier.
fn pattern_idents(toks: &[Token], at: usize, end: usize) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = at;
    while j <= end && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && (t.is_punct("=") || t.is_punct(":") || t.is_ident("in")) {
            break;
        } else if t.kind == TokenKind::Ident
            && !t.is_ident("mut")
            && !t.is_ident("ref")
            && !toks.get(j + 1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
        {
            out.push(t.text.clone());
        }
        j += 1;
    }
    (out, j)
}

/// One nondeterminism-taint finding inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// 1-based line of the sink.
    pub line: usize,
    /// What flowed where.
    pub message: String,
    /// `true` when the sink is a float accumulator (the rule scopes those to
    /// the numeric crates).
    pub float_sink: bool,
}

/// `true` when `name` (resolved through aliases) is a persisted-record type
/// name for sink purposes.
fn record_type_name(symbols: &SymbolTable, name: &str) -> bool {
    let canon = symbols.canonical(name);
    canon.len() > 6 && (canon.ends_with("Record") || canon.ends_with("Result"))
}

/// Forward taint pass over one function body: propagates from sources
/// through `let` bindings (including tuple destructuring), assignments, and
/// `for` patterns, and reports flows into record fields, wire payloads, and
/// float accumulators. Two passes approximate a fixpoint through loops.
pub fn fn_taint(
    toks: &[Token],
    symbols: &SymbolTable,
    in_test: &[bool],
    body: (usize, usize),
    tainted_fns: &BTreeSet<String>,
) -> Vec<TaintFinding> {
    if toks.is_empty() {
        return Vec::new();
    }
    let (bs, be) = clamp(body, toks.len());
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut findings: Vec<TaintFinding> = Vec::new();
    for pass in 0..2 {
        let report = pass == 1;
        let mut i = bs;
        while i <= be {
            let t = &toks[i];
            if t.is_ident("let") {
                let mut k = i + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                let (names, stop) = pattern_idents(toks, k, be);
                let (_, e) = statement_span(toks, i);
                if let Some(eq) = (stop..=e).find(|&j| toks[j].is_punct("=")) {
                    if tainted_expr(toks, symbols, (eq + 1, e), &tainted, tainted_fns).is_some() {
                        tainted.extend(names);
                    }
                }
            } else if t.is_ident("for") {
                let (names, stop) = pattern_idents(toks, i + 1, be);
                let (_, e) = statement_span(toks, stop.min(be));
                if tainted_expr(toks, symbols, (stop, e), &tainted, tainted_fns).is_some()
                    || iterates_unordered(toks, symbols, (stop, e))
                {
                    tainted.extend(names);
                }
            } else if t.kind == TokenKind::Ident
                && !(i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_ident("let")))
            {
                // Assignment (`x = …`, `x += …`, `x.f = …`) or record
                // literal (`SomeRecord { … }`).
                let root = &toks[i].text;
                let mut j = i + 1;
                let mut field: Option<String> = None;
                while toks.get(j).is_some_and(|t| t.is_punct("."))
                    && toks.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                    && !toks.get(j + 2).is_some_and(|t| t.is_punct("("))
                {
                    field = Some(toks[j + 1].text.clone());
                    j += 2;
                }
                let op = toks.get(j).filter(|t| t.is_punct("=") || t.is_punct("+="));
                if let Some(op) = op.map(|t| t.text.clone()) {
                    let (_, e) = statement_span(toks, j);
                    let why = tainted_expr(toks, symbols, (j + 1, e), &tainted, tainted_fns);
                    if let Some(why) = why {
                        let is_record = symbols.hint(root) == Some(TypeHint::RecordLike);
                        if field.is_some() && is_record {
                            if report && !in_test.get(i).copied().unwrap_or(false) {
                                findings.push(TaintFinding {
                                    line: toks[i].line,
                                    message: format!(
                                        "{} flows into persisted record field `{}.{}`",
                                        why,
                                        root,
                                        field.unwrap_or_default()
                                    ),
                                    float_sink: false,
                                });
                            }
                        } else if field.is_none()
                            && op == "+="
                            && symbols.hint(root) == Some(TypeHint::Float)
                        {
                            if report && !in_test.get(i).copied().unwrap_or(false) {
                                findings.push(TaintFinding {
                                    line: toks[i].line,
                                    message: format!(
                                        "{why} flows into float accumulator `{root}`"
                                    ),
                                    float_sink: true,
                                });
                            }
                            tainted.insert(root.clone());
                        } else if field.is_none() {
                            tainted.insert(root.clone());
                        }
                    }
                } else if record_type_name(symbols, root)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("{"))
                {
                    if report {
                        findings.extend(record_literal_sinks(
                            toks,
                            symbols,
                            in_test,
                            i,
                            &tainted,
                            tainted_fns,
                        ));
                    }
                    i = block_close(toks, i + 1);
                }
            } else if t.is_punct(".") {
                // Wire payload sink: `.send_bytes(…)` / `.send_bytes_to(…)`.
                if let Some(m) = toks.get(i + 1) {
                    if (m.is_ident("send_bytes") || m.is_ident("send_bytes_to"))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
                    {
                        let close = paren_close(toks, i + 2);
                        let why =
                            tainted_expr(toks, symbols, (i + 3, close), &tainted, tainted_fns);
                        if let Some(why) = why {
                            if report && !in_test.get(i).copied().unwrap_or(false) {
                                findings.push(TaintFinding {
                                    line: m.line,
                                    message: format!(
                                        "{} flows into wire payload `.{}(…)`",
                                        why, m.text
                                    ),
                                    float_sink: false,
                                });
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    findings.sort_by(|a, b| (a.line, a.message.clone()).cmp(&(b.line, b.message.clone())));
    findings.dedup();
    findings
}

/// `true` when the `for`-loop iterable in `range` is a bare unordered map
/// (`for (k, v) in &m` with `m: HashMap<…>`).
fn iterates_unordered(toks: &[Token], symbols: &SymbolTable, range: (usize, usize)) -> bool {
    let (s, e) = clamp(range, toks.len());
    toks[s..=e].iter().any(|t| {
        t.kind == TokenKind::Ident && symbols.hint(&t.text) == Some(TypeHint::UnorderedMap)
    })
}

/// Taint sinks inside one record struct literal starting at the type name
/// token `at` (`Name { field: expr, … }`).
fn record_literal_sinks(
    toks: &[Token],
    symbols: &SymbolTable,
    in_test: &[bool],
    at: usize,
    tainted: &BTreeSet<String>,
    tainted_fns: &BTreeSet<String>,
) -> Vec<TaintFinding> {
    let open = at + 1;
    let close = block_close(toks, open);
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < close {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth = depth.saturating_sub(1);
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(":"))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(":"))
        {
            // Field value runs to the next `,` at this depth (or the close).
            let mut end = j + 2;
            let mut d = 0usize;
            while end < close {
                let v = &toks[end];
                if v.is_punct("{") || v.is_punct("(") || v.is_punct("[") {
                    d += 1;
                } else if v.is_punct("}") || v.is_punct(")") || v.is_punct("]") {
                    d = d.saturating_sub(1);
                } else if d == 0 && v.is_punct(",") {
                    break;
                }
                end += 1;
            }
            let why = tainted_expr(toks, symbols, (j + 2, end.saturating_sub(1)), tainted, tainted_fns);
            if let Some(why) = why {
                if !in_test.get(j).copied().unwrap_or(false) {
                    out.push(TaintFinding {
                        line: t.line,
                        message: format!(
                            "{} flows into record literal field `{}: …` of `{}`",
                            why, t.text, toks[at].text
                        ),
                        float_sink: false,
                    });
                }
            }
            j = end;
            continue;
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn prepared(src: &str) -> (ParsedFile, SymbolTable) {
        let pf = parse(lex(src));
        let symbols = SymbolTable::build(&pf);
        (pf, symbols)
    }

    fn guards_of(src: &str) -> Vec<Guard> {
        let (pf, symbols) = prepared(src);
        let body = pf.fns[0].body.expect("fixture fn has a body");
        fn_guards(&pf.tokens, &symbols, body)
    }

    #[test]
    fn plain_lock_binding_is_a_guard() {
        let g = guards_of("fn f() { let g = state.lock(); g.push(1); }");
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].name, "g");
        assert_eq!(g[0].lock, "state");
    }

    #[test]
    fn match_wrapped_acquisition_is_a_guard() {
        let g = guards_of(
            "fn f() { let sender = match pool.jobs.lock() { Ok(g) => g, Err(p) => p.into_inner() }; }",
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].lock, "jobs");
    }

    #[test]
    fn drop_ends_the_guard_early() {
        let src = "fn f() { let g = state.lock(); drop(g); tx.send(1); }";
        let (pf, symbols) = prepared(src);
        let g = guards_of(src);
        let send_dot = pf.tokens.iter().position(|t| t.is_ident("send")).expect("send") - 1;
        assert!(g[0].end < send_dot, "guard must end at drop, before the send");
        let _ = symbols;
    }

    #[test]
    fn shadowing_let_ends_the_previous_guard() {
        let src = "fn f() { let g = a.lock(); let g = b.lock(); g.recv(); }";
        let g = guards_of(src);
        assert_eq!(g.len(), 2);
        assert!(g[0].end <= g[1].start, "first guard ends at the shadowing let");
    }

    #[test]
    fn inner_block_scopes_the_guard() {
        // The binding inside `{ … }` must not leak liveness past the block.
        let src = "fn f() { let next = { let g = jobs.lock(); g.recv() }; other.send(next); }";
        let (pf, _) = prepared(src);
        let g = guards_of(src);
        assert_eq!(g.len(), 1, "only the inner binding is a guard: {g:?}");
        let send_dot = pf.tokens.iter().position(|t| t.is_ident("send")).expect("send") - 1;
        assert!(g[0].end < send_dot, "guard dies at the inner block close");
        // …but the recv inside the block is covered.
        let recv_dot = pf.tokens.iter().position(|t| t.is_ident("recv")).expect("recv") - 1;
        assert!(recv_dot > g[0].start && recv_dot <= g[0].end);
    }

    #[test]
    fn rw_acquisitions_need_a_lock_hint() {
        // `file.write()` is I/O, not a lock acquisition…
        let g = guards_of("fn f() { let h = file.write(); }");
        assert!(g.is_empty(), "{g:?}");
        // …but a RwLock-hinted receiver is.
        let g = guards_of("fn f(table: &RwLock<u32>) { let h = table.write(); }");
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].lock, "table");
    }

    #[test]
    fn cycle_detection_across_functions() {
        let src = "fn ab() { let a = x.lock(); let b = y.lock(); }\n\
                   fn ba() { let b = y.lock(); let a = x.lock(); }";
        let (pf, _) = prepared(src);
        let files = vec![("crates/a/src/l.rs".to_string(), &pf)];
        let flow = WorkspaceFlow::build(&files);
        assert_eq!(flow.cycle_edges.len(), 2, "both orders are on the cycle: {flow:?}");
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let src = "fn ab() { let a = x.lock(); let b = y.lock(); }\n\
                   fn ab2() { let a = x.lock(); let b = y.lock(); }";
        let (pf, _) = prepared(src);
        let files = vec![("crates/a/src/l.rs".to_string(), &pf)];
        let flow = WorkspaceFlow::build(&files);
        assert!(flow.cycle_edges.is_empty(), "{flow:?}");
    }

    #[test]
    fn cycle_through_a_callee() {
        // f holds X and calls g (which takes Y); h holds Y and calls k
        // (which takes X): X→Y and Y→X through one call level each.
        let src = "fn f() { let a = x.lock(); g(); }\nfn g() { let b = y.lock(); }\n\
                   fn h() { let b = y.lock(); k(); }\nfn k() { let a = x.lock(); }";
        let (pf, _) = prepared(src);
        let files = vec![("crates/a/src/l.rs".to_string(), &pf)];
        let flow = WorkspaceFlow::build(&files);
        assert!(!flow.cycle_edges.is_empty(), "call-level edges close the cycle");
    }

    #[test]
    fn taint_flows_through_let_and_tuple() {
        let src = "fn f(m: HashMap<u32, f32>, rec: &mut FooRecord) {\n\
                   let total = m.values().count();\n\
                   let (a, b) = (total, 2);\n\
                   rec.loss = a;\n}";
        let (pf, symbols) = prepared(src);
        let body = pf.fns[0].body.expect("body");
        let fs = fn_taint(&pf.tokens, &symbols, &pf.in_test, body, &BTreeSet::new());
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("rec.loss"), "{fs:?}");
    }

    #[test]
    fn ordered_map_is_not_a_source() {
        let src = "fn f(m: BTreeMap<u32, f32>, rec: &mut FooRecord) {\n\
                   let total = m.values().count();\nrec.loss = total;\n}";
        let (pf, symbols) = prepared(src);
        let body = pf.fns[0].body.expect("body");
        let fs = fn_taint(&pf.tokens, &symbols, &pf.in_test, body, &BTreeSet::new());
        assert!(fs.is_empty(), "BTreeMap iteration is deterministic: {fs:?}");
    }

    #[test]
    fn one_level_call_inlining() {
        let src = "fn f(rec: &mut FooRecord) { let n = helper(); rec.n = n; }";
        let (pf, symbols) = prepared(src);
        let body = pf.fns[0].body.expect("body");
        let mut tfns = BTreeSet::new();
        tfns.insert("helper".to_string());
        let fs = fn_taint(&pf.tokens, &symbols, &pf.in_test, body, &tfns);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }
}
