//! `lint --explain <RULE>`: the long-form rationale behind each rule.
//!
//! The text answers the three questions a developer hitting a finding
//! actually has — *why is this a hazard in this workspace*, *what does a
//! finding look like*, and *what are my options when the code is right
//! anyway* (waiver policy: `lint-allow.toml` for reviewed permanent waivers,
//! `lint-baseline.toml` for ratcheted pre-existing debt).

use crate::rules::{ALLOC_RULES, RULE_IDS};

/// Full explanation for one rule id, or `None` for an unknown id.
pub fn explain(rule: &str) -> Option<String> {
    let (rationale, example) = match rule {
        "hash-collections" => (
            "HashMap/HashSet iterate in an order randomized per process. Any \
             aggregation, client selection, or serialization driven by that order \
             silently differs between runs, which breaks the bit-for-bit \
             reproducibility the paper's evaluation rests on. Use BTreeMap/BTreeSet \
             or dense integer-id indexing.",
            "use std::collections::HashMap;   // flagged, even through `use … as` aliases",
        ),
        "wall-clock" => (
            "The emulator owns its own clock (`sim_time_secs`). Reading the host \
             clock (Instant::now, SystemTime) in a sim path couples results to \
             machine speed and scheduler jitter; every duration must derive from \
             the deterministic sim clock.",
            "let t0 = std::time::Instant::now();   // flagged in library code",
        ),
        "truncating-cast" => (
            "`as <int>` silently truncates and wraps. On byte/time-accounting \
             statements (identifiers mentioning bytes, secs, latency, …) a unit \
             bug becomes a wrong paper figure instead of a loud error. Use \
             `u64::from`/`try_from` or widen the accumulator.",
            "let total_bytes = (scalars * 4) as u32;   // flagged",
        ),
        "no-unwrap" => (
            "A panic inside the emulation aborts a whole multi-hour sweep. \
             Fallible paths must return Result; the remaining panics must carry \
             an `.expect(\"…\")` message of at least 10 chars documenting the \
             invariant that makes failure impossible.",
            "let x = v.pop().unwrap();   // flagged; .expect(\"ring is never empty\") passes",
        ),
        "serde-default" => (
            "Persisted record structs (*Record/*Result/*Stats deriving \
             Deserialize) are read back by future binaries. Every field needs \
             #[serde(default)] (or a container-level default) so records written \
             by an older binary stay loadable after fields are added.",
            "pub struct RoundRecord { pub loss: f64 }   // field flagged without a default",
        ),
        "panic-path" => (
            "Functions transitively reachable (name-based call graph) from the \
             experiment round loop or the reliable-session entry points must not \
             panic: explicit panic!/unreachable!, slice indexing, and .expect() \
             all abort the sweep. Use get()/get_mut(), checked ops, or propagate \
             FlError.",
            "let w = weights[idx];   // flagged inside a hot-path function",
        ),
        "unchecked-arith" => (
            "Wire-byte conservation and sim-time monotonicity are paper-level \
             invariants. Bare +/* on accounting identifiers (bytes, *_bytes, \
             *_ms, sim_time*) can wrap silently in release builds; use \
             checked_add/checked_mul or saturating_* so overflow is loud.",
            "total_bytes += chunk_len;   // flagged; checked_add(...).expect(\"…\") passes",
        ),
        "float-determinism" => (
            "Float addition is not associative: summing the same values in a \
             different order changes the bit pattern. Accumulating f32/f64 over \
             a map/set iteration (values()/keys()) or par_iter in the numeric \
             crates breaks run-to-run reproducibility; collect into a Vec sorted \
             by a stable key first.",
            "weights.values().sum::<f64>()   // flagged in crates/{tensor,nn,strategies}",
        ),
        "lock-order" => (
            "Deadlock and poison hazards found by the guard-liveness dataflow \
             pass. A Mutex/RwLock guard held across an mpsc send/recv can park \
             the holder while workers starve; holding one across a call that \
             reaches the worker-pool dispatch path (run_chunks) can deadlock \
             dispatcher against workers; holding one across catch_unwind can \
             swallow a panic and leave the lock poisoned for every later \
             acquirer. Acquiring locks in different orders in different \
             functions (a cyclic edge in the cross-function acquisition graph) \
             is the classic ABBA deadlock. Fix by shrinking the critical \
             section: collect what you need under the lock, drop the guard, \
             then send/call.",
            "let g = state.lock(); inner.send_bytes(b)?;   // flagged: guard held across send",
        ),
        "channel-discipline" => (
            "mpsc usage patterns that wedge the pool or leak memory. A blocking \
             recv/recv_timeout in a function reachable from a pool-worker body \
             parks the worker on an empty channel and wedges dispatch (use a \
             Condvar-guarded queue or a bounded drain). A send after an explicit \
             drop of the same endpoint always errors at runtime. A send inside \
             an unbounded loop/while with no drain on the same path (no recv, no \
             call to a receiving function) grows the queue without bound.",
            "loop { tx.send(job); }   // flagged: unbounded send loop with no drain",
        ),
        "nondeterminism-taint" => (
            "Forward taint tracking from nondeterminism sources to the sinks the \
             reproducibility contract protects. Sources: iteration over \
             hash-based maps/sets, thread identity and hardware thread counts \
             (available_parallelism), and wall-clock reads. Taint propagates \
             through let bindings (including tuple destructuring), assignments, \
             for-loop patterns, and one level of call inlining. Sinks: fields of \
             persisted *Record/*Result values, wire payload bytes \
             (send_bytes/send_bytes_to), and float accumulators in the numeric \
             crates. Emulation outputs must be a pure function of config and \
             seed; order the iteration or derive the value from the sim clock.",
            "rec.loss = m.values().sum();   // flagged when `m` is a HashMap",
        ),
        "hot-alloc" => (
            "Allocation expressions (Vec::new, vec![…], with_capacity, \
             .to_vec()/.collect(), format!, Box::new, .clone() of a buffer) in \
             functions steady-state reachable from the round-loop roots. The \
             call-graph closure refuses to descend into setup-named callees \
             (new/from_*/build_*/…) so one-time construction is out of scope; \
             what remains runs every round, where per-round allocator traffic \
             is the communication-efficiency tax the paper's timing model \
             ignores. Hoist the buffer out of the loop or reuse a scratch \
             allocation (the *_into APIs exist for this).",
            "let snap = self.server.global().to_vec();   // flagged inside run()",
        ),
        "loop-realloc" => (
            "push/extend (and insert on a Vec) inside a loop on a collection \
             with no visible capacity reservation earlier in the function. \
             Every growth past capacity reallocates and copies the whole \
             backing buffer — O(n) work and allocator churn the loop body never \
             mentions. Reserve with with_capacity/reserve (or a sized \
             vec![elem; n]) before the loop.",
            "for c in clients { out.push(c.delta()); }   // flagged without a reserve",
        ),
        "redundant-clone" => (
            ".clone()/.to_vec() of a local binding that is never read again in \
             the function: the copy exists only to satisfy the borrow checker \
             and the original could have been moved. The liveness scan is \
             token-level (a binding reused only across loop iterations is \
             exempt); field projections are never flagged because the owner \
             may still need the rest of the struct.",
            "consume(name.clone());   // flagged when `name` is dead afterwards",
        ),
        _ => return None,
    };
    let ratchet = if ALLOC_RULES.contains(&rule) {
        "Known hot-path allocations live in crates/xtask/alloc-budget.toml, \
         regenerated with `lint --fix-budget` (its [runtime] per-round ceilings \
         are preserved and cross-checked by tests/alloc_budget.rs); the ratchet \
         fails on new findings and on stale entries, so the count only moves \
         down."
    } else {
        "Pre-existing debt lives in crates/xtask/lint-baseline.toml, \
         regenerated with `lint --fix-baseline`; the ratchet fails on new \
         findings and on stale entries, so the count only moves down."
    };
    Some(format!(
        "rule: {rule}\n\nwhy\n  {}\n\nexample\n  {}\n\nwaiver policy\n  \
         Correct-by-design code gets a reviewed [[allow]] entry in \
         crates/xtask/lint-allow.toml (rule/path/contains/reason — the reason is \
         mandatory). {}\n",
        wrap(rationale, 74),
        example,
        ratchet
    ))
}

/// Every rule has explain text by construction; this keeps the two lists in
/// sync at test time.
pub fn all_explained() -> bool {
    RULE_IDS.iter().all(|id| explain(id).is_some_and(|t| !t.trim().is_empty()))
}

/// Greedy line wrap at `width`, indenting continuations to match the lead.
fn wrap(text: &str, width: usize) -> String {
    let mut out = String::new();
    let mut col = 0usize;
    for w in text.split_whitespace() {
        if col > 0 && col + 1 + w.len() > width {
            out.push_str("\n  ");
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(w);
        col += w.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_rule_has_explain_text() {
        assert!(all_explained());
        for id in RULE_IDS {
            let text = explain(id).expect("registered rule must have explain text");
            assert!(text.contains("waiver policy"), "{id}: missing waiver section");
            assert!(text.contains("example"), "{id}: missing example section");
        }
    }

    #[test]
    fn alloc_rules_point_at_the_budget_ratchet() {
        for id in ALLOC_RULES {
            let text = explain(id).expect("alloc rule must have explain text");
            assert!(text.contains("alloc-budget.toml"), "{id}: must name the budget file");
            assert!(text.contains("--fix-budget"), "{id}: must name the regeneration flag");
        }
        let other = explain("panic-path").expect("panic-path explains");
        assert!(other.contains("lint-baseline.toml"));
    }

    #[test]
    fn unknown_rule_is_none() {
        assert!(explain("no-such-rule").is_none());
        assert!(explain("").is_none());
    }

    #[test]
    fn wrap_keeps_words_whole() {
        let w = wrap("one two three four five six seven eight", 12);
        for line in w.lines() {
            assert!(line.trim().len() <= 13, "{line:?}");
        }
        assert_eq!(w.split_whitespace().count(), 8);
    }
}
