//! Parser for `xtask/lint-allow.toml`, the only sanctioned way to suppress a
//! lint finding. Each suppression is an `[[allow]]` table naming the rule,
//! the file, a `contains` substring that must appear on the offending line,
//! and a mandatory human-readable `reason` — so every exception is reviewed
//! and greppable.
//!
//! The parser handles exactly the TOML subset the allow file needs (array of
//! tables with single-line string keys) to stay dependency-free.

use crate::rules::Diagnostic;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (must be one of [`crate::rules::RULE_IDS`]).
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Substring that must occur on the offending line.
    pub contains: String,
    /// Why this violation is acceptable.
    pub reason: String,
}

/// Parse failure with a 1-based line number into the allow file.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowParseError {
    /// Line in `lint-allow.toml` where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the allow-file text into entries.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = current.take() {
                validate(done, lineno).map(|e| entries.push(e))?;
            }
            current = Some(AllowEntry::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowParseError {
                line: lineno,
                message: format!("unexpected table `{line}`; only [[allow]] is supported"),
            });
        }
        let Some(eq) = line.find('=') else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| AllowParseError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            })?;
        let Some(entry) = current.as_mut() else {
            return Err(AllowParseError {
                line: lineno,
                message: "key outside any [[allow]] table".to_string(),
            });
        };
        match key {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "contains" => entry.contains = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!(
                        "unknown key `{other}` (expected rule/path/contains/reason)"
                    ),
                });
            }
        }
    }
    let last_line = text.lines().count();
    if let Some(done) = current.take() {
        validate(done, last_line).map(|e| entries.push(e))?;
    }
    Ok(entries)
}

/// Rejects entries missing required keys or naming unknown rules.
fn validate(entry: AllowEntry, line: usize) -> Result<AllowEntry, AllowParseError> {
    if entry.rule.is_empty() || entry.path.is_empty() || entry.reason.is_empty() {
        return Err(AllowParseError {
            line,
            message: "every [[allow]] entry needs non-empty rule, path, and reason".to_string(),
        });
    }
    if !crate::rules::RULE_IDS.contains(&entry.rule.as_str()) {
        return Err(AllowParseError {
            line,
            message: format!(
                "unknown rule `{}` (known: {})",
                entry.rule,
                crate::rules::RULE_IDS.join(", ")
            ),
        });
    }
    Ok(entry)
}

/// Splits diagnostics into (kept, suppressed) and reports entries that
/// matched nothing — a stale allow entry is itself a finding, otherwise the
/// allow file rots into a blanket waiver.
pub fn apply(
    diags: Vec<Diagnostic>,
    entries: &[AllowEntry],
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<AllowEntry>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    for d in diags {
        let hit = entries.iter().position(|e| {
            e.rule == d.rule
                && e.path == d.path
                && (e.contains.is_empty() || d.snippet.contains(&e.contains))
        });
        match hit {
            Some(idx) => {
                used[idx] = true;
                suppressed.push(d);
            }
            None => kept.push(d),
        }
    }
    let unused = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line: 1,
            rule,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn parses_entries_with_comments() {
        let text = "# header comment\n\n[[allow]]\nrule = \"no-unwrap\"\npath = \"crates/fl/src/x.rs\"\ncontains = \"unwrap\"\nreason = \"mutex poisoning is fatal by design\"\n";
        let entries = parse(text).expect("well-formed allow file must parse");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "no-unwrap");
        assert_eq!(entries[0].reason, "mutex poisoning is fatal by design");
    }

    #[test]
    fn empty_file_parses_to_no_entries() {
        assert_eq!(parse("# nothing suppressed\n").expect("comment-only file parses"), vec![]);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let text = "[[allow]]\nrule = \"no-unwrap\"\npath = \"a.rs\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let text = "[[allow]]\nrule = \"bogus\"\npath = \"a.rs\"\nreason = \"x\"\n";
        let err = parse(text).expect_err("unknown rule must be rejected");
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn apply_suppresses_matching_and_reports_unused() {
        let entries = vec![
            AllowEntry {
                rule: "no-unwrap".to_string(),
                path: "a.rs".to_string(),
                contains: "lock()".to_string(),
                reason: "poisoning fatal".to_string(),
            },
            AllowEntry {
                rule: "wall-clock".to_string(),
                path: "b.rs".to_string(),
                contains: String::new(),
                reason: "stale".to_string(),
            },
        ];
        let diags = vec![
            diag("no-unwrap", "a.rs", "m.lock().unwrap();"),
            diag("no-unwrap", "a.rs", "v.pop().unwrap();"),
        ];
        let (kept, suppressed, unused) = apply(diags, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "wall-clock");
    }
}
