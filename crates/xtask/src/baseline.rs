//! The findings ratchet: `crates/xtask/lint-baseline.toml`.
//!
//! Pre-existing findings are recorded in a checked-in baseline. A lint run
//! then fails on (a) any finding *not* in the baseline — new debt is
//! rejected — and (b) any baseline entry that no longer matches a finding in
//! a scanned file — fixing a finding requires deleting its entry, so the
//! ratchet only turns one way and the file never silently over-waives.
//!
//! Matching is exact on `(rule, path, line, snippet)`: moving code
//! invalidates its entries on purpose (rerun `lint --fix-baseline`, review
//! the diff). Regeneration is deterministic — sorted by path, line, rule —
//! so the file never produces noisy diffs.

use crate::rules::Diagnostic;
use std::collections::BTreeSet;

/// Default location of the baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "crates/xtask/lint-baseline.toml";

/// One `[[finding]]` entry of the baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id (one of [`crate::rules::RULE_IDS`]).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// Trimmed source line at the finding (exact-match anchor).
    pub snippet: String,
}

/// Parse failure with a 1-based line number into the baseline file.
#[derive(Debug, PartialEq, Eq)]
pub struct BaselineParseError {
    /// Line in `lint-baseline.toml` where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-baseline.toml:{}: {}", self.line, self.message)
    }
}

/// Escapes a string for a double-quoted TOML value.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescapes a double-quoted TOML value body.
pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses the baseline text into entries.
///
/// # Errors
/// Returns a [`BaselineParseError`] for malformed lines, unknown keys, or
/// entries naming unknown rules.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, BaselineParseError> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut current: Option<BaselineEntry> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            if let Some(done) = current.take() {
                entries.push(validate(done, lineno)?);
            }
            current = Some(BaselineEntry::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(BaselineParseError {
                line: lineno,
                message: format!("unexpected table `{line}`; only [[finding]] is supported"),
            });
        }
        let Some(eq) = line.find('=') else {
            return Err(BaselineParseError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        let Some(entry) = current.as_mut() else {
            return Err(BaselineParseError {
                line: lineno,
                message: "key outside any [[finding]] table".to_string(),
            });
        };
        if key == "line" {
            entry.line = value.parse().map_err(|_| BaselineParseError {
                line: lineno,
                message: format!("`line` must be a positive integer, got `{value}`"),
            })?;
            continue;
        }
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| BaselineParseError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            })?;
        let value = unescape(value);
        match key {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "snippet" => entry.snippet = value,
            other => {
                return Err(BaselineParseError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected rule/path/line/snippet)"),
                });
            }
        }
    }
    let last_line = text.lines().count();
    if let Some(done) = current.take() {
        entries.push(validate(done, last_line)?);
    }
    Ok(entries)
}

/// Rejects entries missing required keys or naming unknown rules.
fn validate(entry: BaselineEntry, line: usize) -> Result<BaselineEntry, BaselineParseError> {
    if entry.rule.is_empty() || entry.path.is_empty() || entry.line == 0 {
        return Err(BaselineParseError {
            line,
            message: "every [[finding]] needs non-empty rule, path, and a 1-based line"
                .to_string(),
        });
    }
    if !crate::rules::RULE_IDS.contains(&entry.rule.as_str()) {
        return Err(BaselineParseError {
            line,
            message: format!(
                "unknown rule `{}` (known: {})",
                entry.rule,
                crate::rules::RULE_IDS.join(", ")
            ),
        });
    }
    Ok(entry)
}

/// Splits diagnostics against the baseline: `(new, baselined, stale)`.
///
/// `scanned` holds the workspace-relative paths of this run's files; entries
/// pointing at files *outside* the scanned set are left alone (a
/// single-file lint must not declare the rest of the baseline stale).
pub fn apply(
    diags: Vec<Diagnostic>,
    entries: &[BaselineEntry],
    scanned: &BTreeSet<String>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<BaselineEntry>) {
    let mut new = Vec::new();
    let mut baselined = Vec::new();
    let mut used = vec![false; entries.len()];
    for d in diags {
        let hit = entries.iter().position(|e| {
            e.rule == d.rule && e.path == d.path && e.line == d.line && e.snippet == d.snippet
        });
        match hit {
            Some(idx) => {
                used[idx] = true;
                baselined.push(d);
            }
            None => new.push(d),
        }
    }
    let stale: Vec<BaselineEntry> = entries
        .iter()
        .zip(used.iter())
        .filter(|(e, u)| !**u && scanned.contains(&e.path))
        .map(|(e, _)| e.clone())
        .collect();
    (new, baselined, stale)
}

/// Renders a deterministic baseline for `diags`: sorted by path, then line,
/// then rule, then snippet; duplicates collapsed.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut keys: Vec<(&str, usize, &str, &str)> = diags
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.rule, d.snippet.as_str()))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut out = String::new();
    out.push_str(
        "# fedsu-xtask lint baseline — pre-existing findings the ratchet tolerates.\n\
         # Generated by `cargo run -p fedsu-xtask -- lint --fix-baseline`; do not edit\n\
         # by hand. Fixing a finding? Rerun --fix-baseline and commit the shrunken\n\
         # file. New findings are NOT added here — fix them instead.\n",
    );
    for (path, line, rule, snippet) in keys {
        out.push_str("\n[[finding]]\n");
        out.push_str(&format!("rule = \"{}\"\n", escape(rule)));
        out.push_str(&format!("path = \"{}\"\n", escape(path)));
        out.push_str(&format!("line = {line}\n"));
        out.push_str(&format!("snippet = \"{}\"\n", escape(snippet)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, line: usize, snippet: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn render_then_parse_round_trips() {
        let diags = vec![
            diag("no-unwrap", "crates/fl/src/a.rs", 3, "x.unwrap(); // \"quoted\" \\ slash"),
            diag("panic-path", "crates/core/src/b.rs", 9, "let v = tbl[i];"),
        ];
        let text = render(&diags);
        let entries = parse(&text).expect("rendered baseline must re-parse");
        assert_eq!(entries.len(), 2);
        // Sorted by path: core before fl.
        assert_eq!(entries[0].path, "crates/core/src/b.rs");
        assert_eq!(entries[1].snippet, "x.unwrap(); // \"quoted\" \\ slash");
        assert_eq!(entries[1].line, 3);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let a = vec![
            diag("no-unwrap", "b.rs", 2, "s2"),
            diag("no-unwrap", "a.rs", 7, "s1"),
        ];
        let b = vec![
            diag("no-unwrap", "a.rs", 7, "s1"),
            diag("no-unwrap", "b.rs", 2, "s2"),
        ];
        assert_eq!(render(&a), render(&b));
        let text = render(&a);
        assert!(text.find("a.rs").expect("a.rs present") < text.find("b.rs").expect("b.rs present"));
    }

    #[test]
    fn apply_classifies_new_baselined_stale() {
        let entries = parse(&render(&[
            diag("no-unwrap", "a.rs", 1, "old finding"),
            diag("no-unwrap", "gone.rs", 5, "fixed finding"),
            diag("no-unwrap", "unscanned.rs", 2, "other target"),
        ]))
        .expect("baseline parses");
        let scanned: BTreeSet<String> = ["a.rs".to_string(), "gone.rs".to_string()].into();
        let diags = vec![
            diag("no-unwrap", "a.rs", 1, "old finding"),
            diag("no-unwrap", "a.rs", 9, "brand new"),
        ];
        let (new, baselined, stale) = apply(diags, &entries, &scanned);
        assert_eq!(new.len(), 1, "unbaselined finding is new");
        assert_eq!(new[0].line, 9);
        assert_eq!(baselined.len(), 1);
        assert_eq!(stale.len(), 1, "fixed finding's entry is stale");
        assert_eq!(stale[0].path, "gone.rs");
    }

    #[test]
    fn line_shift_invalidates_entry() {
        let entries =
            parse(&render(&[diag("no-unwrap", "a.rs", 4, "x.unwrap();")])).expect("parses");
        let scanned: BTreeSet<String> = ["a.rs".to_string()].into();
        let diags = vec![diag("no-unwrap", "a.rs", 5, "x.unwrap();")];
        let (new, baselined, stale) = apply(diags, &entries, &scanned);
        assert_eq!(new.len(), 1, "moved finding counts as new");
        assert!(baselined.is_empty());
        assert_eq!(stale.len(), 1, "old position is stale — rerun --fix-baseline");
    }

    #[test]
    fn unknown_rule_rejected() {
        let text = "[[finding]]\nrule = \"bogus\"\npath = \"a.rs\"\nline = 1\nsnippet = \"s\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn empty_baseline_parses() {
        assert!(parse("# no findings\n").expect("comment-only file parses").is_empty());
        assert!(parse("").expect("empty file parses").is_empty());
    }
}
