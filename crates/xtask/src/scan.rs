//! Source preparation for the lint rules: lexes the file ([`crate::lexer`]),
//! parses the item tree ([`crate::ast`]), and builds the per-file symbol
//! table ([`crate::resolve`]). Rules consume the token stream directly, so
//! string and comment contents can never produce findings — tokens carry
//! positions, and `#[cfg(test)]` spans are flags on the tokens themselves.

use crate::ast::{self, ParsedFile};
use crate::resolve::SymbolTable;

/// A source file preprocessed for linting.
#[derive(Debug)]
pub struct PreparedSource {
    /// Original lines, 0-indexed (token lines are 1-based).
    pub raw_lines: Vec<String>,
    /// Token stream + item tree.
    pub file: ParsedFile,
    /// Use-alias resolution and local type hints.
    pub symbols: SymbolTable,
}

/// Lexes and parses `source` into a [`PreparedSource`].
pub fn prepare(source: &str) -> PreparedSource {
    let file = ast::parse(crate::lexer::lex(source));
    let symbols = SymbolTable::build(&file);
    PreparedSource {
        raw_lines: source.lines().map(str::to_string).collect(),
        file,
        symbols,
    }
}

impl PreparedSource {
    /// `true` when token `i` is inside test-only code.
    pub fn tok_in_test(&self, i: usize) -> bool {
        self.file.in_test.get(i).copied().unwrap_or(false)
    }

    /// The trimmed raw source of 1-based `line` (for diagnostics).
    pub fn snippet(&self, line: usize) -> &str {
        self.raw_lines
            .get(line.saturating_sub(1))
            .map_or("", |l| l.trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_skip_strings_and_comments() {
        let p = prepare("let x = \"HashMap inside\".len(); // HashMap\n/* SystemTime */");
        assert!(!p.file.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!p.file.tokens.iter().any(|t| t.is_ident("SystemTime")));
    }

    #[test]
    fn cfg_test_tokens_are_flagged() {
        let p = prepare("fn lib() {}\n#[cfg(test)]\nmod t {\n    fn x() { y.unwrap(); }\n}\n");
        let unwrap_at =
            p.file.tokens.iter().position(|t| t.is_ident("unwrap")).expect("unwrap token");
        assert!(p.tok_in_test(unwrap_at));
        assert!(!p.tok_in_test(0));
    }

    #[test]
    fn snippet_is_trimmed_raw_line() {
        let p = prepare("fn f() {\n    let x = 1;\n}\n");
        assert_eq!(p.snippet(2), "let x = 1;");
        assert_eq!(p.snippet(99), "");
    }
}
