//! Source preparation for the lint rules: a lightweight Rust lexer that
//! blanks comments and string-literal *contents* (preserving byte offsets and
//! line structure), plus `#[cfg(test)]` span detection so rules can
//! distinguish library code from test code without a full parser.

/// A source file preprocessed for linting.
#[derive(Debug, Clone)]
pub struct PreparedSource {
    /// Original lines, 0-indexed (diagnostics add 1).
    pub raw_lines: Vec<String>,
    /// Lines with comments removed and string/char contents blanked to
    /// spaces. Delimiters (`"`, `'`, `r#"`) are kept, so spans keep their
    /// width and `.expect("...")` message lengths stay measurable.
    pub code_lines: Vec<String>,
    /// `true` for every line inside a `#[cfg(test)]` item (module, fn, impl).
    pub in_test: Vec<bool>,
}

/// Lexes `source` into [`PreparedSource`].
pub fn prepare(source: &str) -> PreparedSource {
    let blanked = blank_comments_and_strings(source);
    let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
    let code_lines: Vec<String> = blanked.lines().map(str::to_string).collect();
    let mut in_test = vec![false; code_lines.len()];
    mark_test_spans(&code_lines, &mut in_test);
    PreparedSource { raw_lines, code_lines, in_test }
}

/// States of the little lexer below.
enum LexState {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Replaces comment bytes and string/char literal contents with spaces,
/// keeping newlines and delimiter characters so line/column structure is
/// unchanged.
fn blank_comments_and_strings(source: &str) -> String {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = LexState::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            LexState::Code => match c {
                '/' if next == Some('/') => {
                    state = LexState::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = LexState::BlockComment { depth: 1 };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    state = LexState::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."# (any hash count).
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        out.push('r');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        out.push('"');
                        i = j + 1;
                        state = LexState::RawStr { hashes };
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. A char literal closes with a
                    // `'` within a few chars; a lifetime never does.
                    let is_char = if next == Some('\\') {
                        true
                    } else {
                        bytes.get(i + 2) == Some(&'\'')
                    };
                    if is_char {
                        state = LexState::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            LexState::LineComment => {
                if c == '\n' {
                    state = LexState::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            LexState::BlockComment { depth } => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = LexState::Code;
                    } else {
                        state = LexState::BlockComment { depth: depth - 1 };
                    }
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment { depth: depth + 1 };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = LexState::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            LexState::RawStr { hashes } => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        state = LexState::Code;
                        i = j;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            LexState::Char => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    state = LexState::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Marks every line covered by a `#[cfg(test)]` (or `#[cfg(any(.., test, ..))]`
/// etc.) item: from the attribute to the end of the following brace-matched
/// block, or to the terminating `;` for block-less items.
fn mark_test_spans(code_lines: &[String], in_test: &mut [bool]) {
    let joined: String = code_lines.join("\n");
    let chars: Vec<char> = joined.chars().collect();
    // Byte-position -> line mapping (by newline counting over chars).
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    let mut ln = 0usize;
    for &c in &chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let hay: String = chars.iter().collect();
    let mut search_from = 0usize;
    while let Some(rel) = hay[search_from..].find("#[cfg(") {
        let attr_start = search_from + rel;
        // Extract the parenthesized condition.
        let cond_start = attr_start + "#[cfg(".len();
        let mut depth = 1usize;
        let mut k = cond_start;
        let hchars: Vec<char> = hay[cond_start..].chars().collect();
        let mut cond = String::new();
        for &c in &hchars {
            if c == '(' {
                depth += 1;
            } else if c == ')' {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            cond.push(c);
            k += c.len_utf8();
        }
        search_from = k.max(attr_start + 1);
        if !mentions_test(&cond) {
            continue;
        }
        // Walk from the end of the attribute to the item it decorates: skip
        // further attributes, then span either a brace block or a `;` item.
        let mut pos = k;
        let bytes = hay.as_bytes();
        let mut brace_depth = 0usize;
        let mut started = false;
        let mut end = hay.len();
        while pos < bytes.len() {
            let c = bytes[pos] as char;
            if !started {
                if c == '{' {
                    started = true;
                    brace_depth = 1;
                } else if c == ';' {
                    end = pos;
                    break;
                }
            } else if c == '{' {
                brace_depth += 1;
            } else if c == '}' {
                brace_depth -= 1;
                if brace_depth == 0 {
                    end = pos;
                    break;
                }
            }
            pos += 1;
        }
        let start_line = char_index_line(&hay, attr_start, &line_of);
        let end_line = char_index_line(&hay, end.min(hay.len().saturating_sub(1)), &line_of);
        for flag in in_test.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
    }
}

/// `true` when a `cfg(...)` condition involves the `test` predicate.
fn mentions_test(cond: &str) -> bool {
    let mut word = String::new();
    for c in cond.chars().chain(std::iter::once(',')) {
        if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            if word == "test" {
                return true;
            }
            word.clear();
        }
    }
    false
}

/// Line index of byte offset `idx` (offsets here are byte offsets into the
/// ASCII-safe joined text; non-ASCII only appears inside already-blanked
/// spans, so byte and char offsets agree where it matters).
fn char_index_line(hay: &str, idx: usize, line_of: &[usize]) -> usize {
    let chars_before = hay
        .char_indices()
        .take_while(|(b, _)| *b < idx)
        .count();
    line_of.get(chars_before).copied().unwrap_or_else(|| line_of.last().copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_but_keep_width() {
        let p = prepare("let x = \"HashMap inside\".len();");
        assert!(!p.code_lines[0].contains("HashMap"));
        assert_eq!(p.code_lines[0].len(), p.raw_lines[0].len());
    }

    #[test]
    fn comments_are_blanked() {
        let p = prepare("let y = 1; // uses HashMap\n/* SystemTime */ let z = 2;");
        assert!(!p.code_lines[0].contains("HashMap"));
        assert!(!p.code_lines[1].contains("SystemTime"));
        assert!(p.code_lines[1].contains("let z"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let p = prepare("let s = r#\"Instant::now\"#; let c = '\\n'; let l: &'static str = s;");
        assert!(!p.code_lines[0].contains("Instant"));
        assert!(p.code_lines[0].contains("&'static str"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let p = prepare(src);
        assert!(!p.in_test[0]);
        assert!(p.in_test[1]);
        assert!(p.in_test[2]);
        assert!(p.in_test[3]);
        assert!(p.in_test[4]);
        assert!(!p.in_test[5]);
    }

    #[test]
    fn cfg_any_test_is_marked() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers {\n}\nfn lib() {}\n";
        let p = prepare(src);
        assert!(p.in_test[0]);
        assert!(p.in_test[2]);
        assert!(!p.in_test[3]);
    }

    #[test]
    fn cfg_not_test_is_not_confused_with_non_test() {
        // `not(test)` still mentions the test predicate; the conservative
        // choice is to treat the item as test-related and skip it. Library
        // code gated on `not(test)` is rare enough that this never hides a
        // real violation in this workspace.
        let src = "#[cfg(feature = \"simd\")]\nfn lib() { x.unwrap(); }\n";
        let p = prepare(src);
        assert!(!p.in_test[1]);
    }

    #[test]
    fn blockless_cfg_test_item_spans_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {}\n";
        let p = prepare(src);
        assert!(p.in_test[1]);
        assert!(!p.in_test[2]);
    }
}
