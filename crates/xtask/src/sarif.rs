//! SARIF 2.1.0 output for `lint --format sarif`.
//!
//! Hand-rolled JSON (the gate stays std-only); the shape follows the SARIF
//! 2.1.0 schema closely enough for GitHub code-scanning ingestion and the CI
//! artifact step: one `run` with `tool.driver.rules` describing every rule
//! id, and one `result` per finding with a `physicalLocation`. Baselined
//! findings are still emitted — with a `suppressions` entry of kind
//! `external` — so the SARIF view shows the whole debt, not just the delta.

use crate::rules::{Diagnostic, RULE_IDS};
use crate::LintReport;

/// One-line description per rule id, for `tool.driver.rules`.
fn rule_summary(id: &str) -> &'static str {
    match id {
        "hash-collections" => {
            "HashMap/HashSet iteration order is nondeterministic; use BTree collections"
        }
        "wall-clock" => "wall-clock read in emulation code; use the deterministic sim clock",
        "truncating-cast" => "`as <int>` on byte/time accounting silently truncates",
        "no-unwrap" => "unwrap or undocumented expect in library code",
        "serde-default" => "persisted record field lacks #[serde(default)]",
        "panic-path" => "possible panic on a path reachable from the experiment round loop",
        "unchecked-arith" => "bare +/* on wire-byte or sim-time accounting values can wrap",
        "float-determinism" => "float accumulation over nondeterministic iteration order",
        "lock-order" => {
            "lock guard held across a channel op, pool dispatch, or catch_unwind; or cyclic lock order"
        }
        "channel-discipline" => {
            "blocking recv on a pool-worker path, send after close, or unbounded send loop"
        }
        "nondeterminism-taint" => {
            "nondeterministic value (unordered iteration, thread count, wall clock) reaches a record, wire, or float sink"
        }
        "hot-alloc" => {
            "allocation expression on a steady-state path reachable from the round loop"
        }
        "loop-realloc" => "collection grows inside a loop with no capacity reservation",
        "redundant-clone" => "clone/to_vec of a binding that is never read again",
        _ => "fedsu-xtask lint rule",
    }
}

/// Escapes a string for a JSON double-quoted value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one SARIF `result` object. `suppressed_by` names the ratchet
/// file that tolerates the finding (`None` for live violations).
fn result_json(d: &Diagnostic, suppressed_by: Option<&str>) -> String {
    let suppressions = match suppressed_by {
        Some(file) => format!(
            ",\"suppressions\":[{{\"kind\":\"external\",\"justification\":\
             \"baselined pre-existing finding ({file})\"}}]"
        ),
        None => String::new(),
    };
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\",\
         \"uriBaseId\":\"SRCROOT\"}},\"region\":{{\"startLine\":{},\"snippet\":{{\"text\":\"{}\"}}}}}}}}]{}}}",
        json_escape(d.rule),
        json_escape(&d.message),
        json_escape(&d.path),
        d.line,
        json_escape(&d.snippet),
        suppressions
    )
}

/// Renders a full SARIF 2.1.0 log for a lint report: unsuppressed violations
/// as plain results, baselined and budgeted findings as externally-suppressed
/// results (naming their respective ratchet files).
pub fn render(report: &LintReport) -> String {
    let rules: Vec<String> = RULE_IDS
        .iter()
        .map(|id| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
                 \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
                json_escape(id),
                json_escape(rule_summary(id))
            )
        })
        .collect();
    let mut results: Vec<String> =
        report.violations.iter().map(|d| result_json(d, None)).collect();
    results.extend(
        report
            .baselined
            .iter()
            .map(|d| result_json(d, Some(crate::baseline::BASELINE_FILE))),
    );
    results.extend(
        report.budgeted.iter().map(|d| result_json(d, Some(crate::budget::BUDGET_FILE))),
    );
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"fedsu-xtask\",\"informationUri\":\
         \"https://example.invalid/fedsu/crates/xtask\",\"version\":\"0.1.0\",\
         \"rules\":[{}]}}}},\"columnKind\":\"utf16CodeUnits\",\
         \"originalUriBaseIds\":{{\"SRCROOT\":{{\"uri\":\"file:///\"}}}},\
         \"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintReport;

    fn diag(rule: &'static str, path: &str, line: usize, snippet: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message: format!("message with \"quotes\" and a\ttab for {rule}"),
            snippet: snippet.to_string(),
        }
    }

    fn report(violations: Vec<Diagnostic>, baselined: Vec<Diagnostic>) -> LintReport {
        LintReport {
            violations,
            baselined,
            suppressed: Vec::new(),
            unused_allows: Vec::new(),
            stale_baseline: Vec::new(),
            budgeted: Vec::new(),
            stale_budget: Vec::new(),
            files_scanned: 1,
        }
    }

    /// Minimal structural JSON validator: balanced delimiters outside
    /// strings, every string closed, no raw control chars. Catches the
    /// escaping bugs hand-rolled emitters actually have.
    fn assert_valid_json(s: &str) {
        let mut stack = Vec::new();
        let mut chars = s.chars().peekable();
        let mut in_str = false;
        while let Some(c) = chars.next() {
            if in_str {
                match c {
                    '\\' => {
                        let _ = chars.next();
                    }
                    '"' => in_str = false,
                    c if (c as u32) < 0x20 => panic!("raw control char inside JSON string"),
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => stack.push(c),
                '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced }}"),
                ']' => assert_eq!(stack.pop(), Some('['), "unbalanced ]"),
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert!(stack.is_empty(), "unclosed delimiters: {stack:?}");
    }

    #[test]
    fn sarif_is_structurally_valid_json_with_escapes() {
        let r = report(
            vec![diag("no-unwrap", "crates/fl/src/a.rs", 3, "x.expect(\"why \\\" here\");")],
            vec![diag("panic-path", "crates/core/src/b.rs", 7, "let v = t[i];")],
        );
        let s = render(&r);
        assert_valid_json(&s);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"no-unwrap\""));
        assert!(s.contains("\"startLine\":3"));
        assert!(s.contains("\"kind\":\"external\""), "baselined finding carries suppression");
        assert!(s.contains("lint-baseline.toml"), "suppression names the ratchet file");
    }

    #[test]
    fn budgeted_findings_are_suppressed_by_the_budget_file() {
        let mut r = report(Vec::new(), Vec::new());
        r.budgeted = vec![diag("hot-alloc", "crates/fl/src/experiment.rs", 4, "vec![0.0; n]")];
        let s = render(&r);
        assert_valid_json(&s);
        assert!(s.contains("\"ruleId\":\"hot-alloc\""));
        assert!(s.contains("alloc-budget.toml"), "suppression names the budget file: {s}");
    }

    #[test]
    fn every_rule_id_is_described() {
        let s = render(&report(Vec::new(), Vec::new()));
        for id in RULE_IDS {
            assert!(s.contains(&format!("\"id\":\"{id}\"")), "rule {id} missing from driver");
            assert_ne!(rule_summary(id), "fedsu-xtask lint rule", "rule {id} needs a summary");
        }
        assert_valid_json(&s);
    }

    #[test]
    fn empty_report_has_empty_results_array() {
        let s = render(&report(Vec::new(), Vec::new()));
        assert!(s.contains("\"results\":[]"));
    }
}
