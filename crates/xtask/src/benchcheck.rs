//! Kernel-bench perf ratchet: `cargo run -p fedsu-xtask -- bench-check`.
//!
//! Compares a freshly produced `BENCH_kernels.json` (see
//! `crates/bench/benches/kernels.rs`) against the checked-in copy and fails
//! when any configuration regressed by more than the tolerance.
//!
//! Raw GFLOP/s are machine-speed-dependent, so the comparison is on
//! **within-run normalized ratios**: each row's GFLOP/s divided by the same
//! size block's `serial_reference` GFLOP/s from the same run. The naive
//! reference kernel is untouched by optimization work, so the ratio isolates
//! "how much faster than naive is this configuration on this machine" — a
//! quantity that transfers between the laptop that produced the baseline and
//! the CI runner that checks it. Sizes present in only one file are skipped
//! (a quick-scale baseline deliberately includes the smoke sizes so a
//! smoke-scale CI run still has points to compare), but sharing **no** size
//! is an error.
//!
//! Like the lint ratchet, the gate only tightens: a run that fails here
//! either gets fixed or the baseline is consciously regenerated with
//! `--fix` and the diff reviewed.
//!
//! Std-only, like the rest of the crate: the JSON subset the bench emits is
//! parsed by the small recursive-descent reader in this module.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default regression tolerance: a normalized ratio may fall at most this
/// fraction below the baseline before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Minimal JSON value for the bench schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the schema needs no more).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is irrelevant to the checker.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document (the subset the bench emits: no exotic number
/// forms beyond `-`, digits, `.`, `e`; `\uXXXX` escapes decoded via
/// `char::from_u32` with the replacement char for unpaired surrogates).
///
/// # Errors
///
/// Returns a byte-offset-tagged message on malformed input or trailing
/// non-whitespace.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("byte {pos}: trailing content after JSON value"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("byte {}: expected `{lit}`", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
        .map_err(|_| format!("byte {start}: invalid number bytes"))?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("byte {start}: invalid number `{text}`"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or(char::REPLACEMENT_CHARACTER));
                        *pos += 4;
                    }
                    other => return Err(format!("byte {}: bad escape {other:?}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = bytes.get(*pos..).unwrap_or_default();
                let step = std::str::from_utf8(rest)
                    .ok()
                    .and_then(|s| s.chars().next())
                    .map_or(1, char::len_utf8);
                let chunk = bytes.get(*pos..*pos + step).unwrap_or_default();
                out.push_str(std::str::from_utf8(chunk).unwrap_or("\u{fffd}"));
                *pos += step;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("byte {}: expected `,` or `]`", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("byte {}: expected object key", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("byte {}: expected `:`", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("byte {}: expected `,` or `}}`", *pos)),
        }
    }
}

/// One size block distilled from the bench JSON: normalized GFLOP/s ratios
/// per row label (`serial_reference` excluded — it is the denominator).
#[derive(Debug, PartialEq)]
pub struct SizeRatios {
    /// `(m, k, n)` of the block.
    pub dims: (u64, u64, u64),
    /// Row label → (`gflops(label) / gflops(serial_reference)` from the same
    /// run, the SIMD level the row ran at).
    pub ratios: BTreeMap<String, (f64, String)>,
}

/// Distilled bench report.
#[derive(Debug, PartialEq)]
pub struct BenchReport {
    /// Whether every configuration matched the reference bit-for-bit.
    pub all_bit_identical: bool,
    /// The SIMD level the run resolved (`scalar`/`sse2`/`avx2`).
    pub simd_level: String,
    /// Per-size normalized ratios, in file order.
    pub sizes: Vec<SizeRatios>,
}

/// Extracts the ratio table from a parsed bench document.
///
/// # Errors
///
/// Returns a message when the document is missing required fields, a size
/// block has no positive `serial_reference` GFLOP/s, or a row is malformed.
pub fn distill(doc: &Json) -> Result<BenchReport, String> {
    if doc.get("bench").and_then(Json::as_str) != Some("kernels") {
        return Err("not a kernels bench report (`bench` != \"kernels\")".to_string());
    }
    let all_bit_identical = match doc.get("all_bit_identical") {
        Some(Json::Bool(v)) => *v,
        _ => return Err("missing `all_bit_identical`".to_string()),
    };
    let simd_level =
        doc.get("simd_level").and_then(Json::as_str).unwrap_or("unknown").to_string();
    let blocks = doc.get("sizes").and_then(Json::as_arr).ok_or("missing `sizes` array")?;
    let mut sizes = Vec::new();
    for block in blocks {
        let dim = |key: &str| -> Result<u64, String> {
            block
                .get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("size block missing `{key}`"))
        };
        let dims = (dim("m")?, dim("k")?, dim("n")?);
        let rows = block.get("rows").and_then(Json::as_arr).ok_or("size block missing `rows`")?;
        let mut gflops = BTreeMap::new();
        for row in rows {
            let label = row
                .get("label")
                .and_then(Json::as_str)
                .ok_or("row missing `label`")?
                .to_string();
            let g = row.get("gflops").and_then(Json::as_f64).ok_or("row missing `gflops`")?;
            let simd = row.get("simd").and_then(Json::as_str).unwrap_or("unknown").to_string();
            gflops.insert(label, (g, simd));
        }
        let serial = gflops
            .get("serial_reference")
            .map(|&(g, _)| g)
            .filter(|&g| g > 0.0)
            .ok_or_else(|| format!("size {dims:?}: no positive serial_reference row"))?;
        let ratios = gflops
            .into_iter()
            .filter(|(label, _)| label != "serial_reference")
            .map(|(label, (g, simd))| (label, (g / serial, simd)))
            .collect();
        sizes.push(SizeRatios { dims, ratios });
    }
    Ok(BenchReport { all_bit_identical, simd_level, sizes })
}

/// Outcome of comparing a current report against the baseline.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Human-readable per-configuration lines.
    pub report: String,
    /// Regression messages (gate fails when non-empty).
    pub regressions: Vec<String>,
    /// Number of (size, label) pairs compared.
    pub compared: usize,
    /// (size, label) pairs skipped because the row ran at a different SIMD
    /// level than the baseline (e.g. a `FEDSU_SIMD=off` fallback run checked
    /// against an AVX2 baseline: its scalar rows still gate, its `simd_*`
    /// rows are incomparable by construction).
    pub skipped_simd_mismatch: usize,
}

/// Compares `current` against `baseline` with the given tolerance.
///
/// # Errors
///
/// Returns a message when the current run is not bit-identical or the two
/// reports share no comparable (size, label) pair.
pub fn check(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<CheckOutcome, String> {
    if !current.all_bit_identical {
        return Err("current run reports bit divergence (all_bit_identical=false)".to_string());
    }
    let mut report = String::new();
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    let mut skipped_simd_mismatch = 0usize;
    for cur_size in &current.sizes {
        let Some(base_size) = baseline.sizes.iter().find(|s| s.dims == cur_size.dims) else {
            continue;
        };
        for (label, (cur_ratio, cur_simd)) in &cur_size.ratios {
            let Some((base_ratio, base_simd)) = base_size.ratios.get(label) else {
                continue;
            };
            let (cur_ratio, base_ratio) = (*cur_ratio, *base_ratio);
            if cur_simd != base_simd {
                skipped_simd_mismatch += 1;
                continue;
            }
            compared += 1;
            let floor = base_ratio * (1.0 - tolerance);
            let ok = cur_ratio >= floor;
            let (m, k, n) = cur_size.dims;
            let _ = writeln!(
                report,
                "  {m}x{k}x{n} {label:<18} ratio {cur_ratio:>6.3} vs baseline {base_ratio:>6.3} \
                 (floor {floor:>6.3}) {}",
                if ok { "ok" } else { "REGRESSED" }
            );
            if !ok {
                regressions.push(format!(
                    "{m}x{k}x{n} {label}: normalized ratio {cur_ratio:.3} fell below \
                     {floor:.3} (baseline {base_ratio:.3}, tolerance {:.0}%)",
                    tolerance * 100.0
                ));
            }
        }
    }
    if compared == 0 {
        return Err(
            "baseline and current share no comparable (size, label) pair — wrong scale, \
             schema drift, or no common SIMD level"
                .to_string(),
        );
    }
    Ok(CheckOutcome { report, regressions, compared, skipped_simd_mismatch })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_doc_at(serial: f64, blocked: f64, simd: f64, level: &str) -> String {
        format!(
            "{{\"bench\":\"kernels\",\"scale\":\"Smoke\",\"hardware_threads\":1,\
             \"simd_level\":\"{level}\",\"all_bit_identical\":true,\"sizes\":[\
             {{\"m\":32,\"k\":32,\"n\":32,\"rows\":[\
             {{\"label\":\"serial_reference\",\"threads\":1,\"simd\":\"scalar\",\"gflops\":{serial}}},\
             {{\"label\":\"blocked_scalar\",\"threads\":1,\"simd\":\"scalar\",\"gflops\":{blocked}}},\
             {{\"label\":\"simd_serial\",\"threads\":1,\"simd\":\"{level}\",\"gflops\":{simd}}}]}}]}}"
        )
    }

    fn mini_doc(serial: f64, blocked: f64, simd: f64) -> String {
        mini_doc_at(serial, blocked, simd, "avx2")
    }

    #[test]
    fn parses_and_distills_the_bench_schema() {
        let doc = parse_json(&mini_doc(10.0, 12.0, 25.0)).expect("parse");
        let report = distill(&doc).expect("distill");
        assert!(report.all_bit_identical);
        assert_eq!(report.simd_level, "avx2");
        assert_eq!(report.sizes.len(), 1);
        let ratios = &report.sizes[0].ratios;
        assert_eq!(ratios.get("blocked_scalar"), Some(&(1.2, "scalar".to_string())));
        assert_eq!(ratios.get("simd_serial"), Some(&(2.5, "avx2".to_string())));
        assert!(!ratios.contains_key("serial_reference"));
    }

    #[test]
    fn json_reader_handles_escapes_nesting_and_rejects_trailing() {
        let v = parse_json("{\"a\\n\\u0041\": [1, -2.5e1, true, null, \"x\"]}").expect("parse");
        let arr = v.get("a\nA").and_then(Json::as_arr).expect("key decoded");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert!(parse_json("{} junk").is_err());
        assert!(parse_json("{\"open\":").is_err());
        assert!(parse_json("[1 2]").is_err());
    }

    #[test]
    fn identical_reports_pass_and_slower_machines_pass() {
        let base = distill(&parse_json(&mini_doc(10.0, 12.0, 25.0)).expect("p")).expect("d");
        // Same ratios at half the absolute speed: a slower CI machine.
        let cur = distill(&parse_json(&mini_doc(5.0, 6.0, 12.5)).expect("p")).expect("d");
        let out = check(&base, &cur, DEFAULT_TOLERANCE).expect("check");
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert_eq!(out.compared, 2);
    }

    #[test]
    fn ratio_drop_beyond_tolerance_regresses() {
        let base = distill(&parse_json(&mini_doc(10.0, 12.0, 25.0)).expect("p")).expect("d");
        // simd_serial ratio 2.5 → 2.0: a 20% drop, outside 10%.
        let cur = distill(&parse_json(&mini_doc(10.0, 12.0, 20.0)).expect("p")).expect("d");
        let out = check(&base, &cur, DEFAULT_TOLERANCE).expect("check");
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("simd_serial"), "{}", out.regressions[0]);
        // Within tolerance: 2.5 → 2.3 is an 8% drop.
        let cur = distill(&parse_json(&mini_doc(10.0, 12.0, 23.0)).expect("p")).expect("d");
        let out = check(&base, &cur, DEFAULT_TOLERANCE).expect("check");
        assert!(out.regressions.is_empty());
    }

    #[test]
    fn scalar_fallback_run_gates_only_its_comparable_rows() {
        let base = distill(&parse_json(&mini_doc(10.0, 12.0, 25.0)).expect("p")).expect("d");
        // FEDSU_SIMD=off run: simd_serial ran at scalar level and is much
        // slower — incomparable against the AVX2 baseline row, so skipped;
        // blocked_scalar still gates (and passes here).
        let cur =
            distill(&parse_json(&mini_doc_at(10.0, 11.5, 11.8, "scalar")).expect("p")).expect("d");
        let out = check(&base, &cur, DEFAULT_TOLERANCE).expect("check");
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert_eq!(out.compared, 1);
        assert_eq!(out.skipped_simd_mismatch, 1);
    }

    #[test]
    fn bit_divergence_and_disjoint_sizes_are_errors() {
        let base = distill(&parse_json(&mini_doc(10.0, 12.0, 25.0)).expect("p")).expect("d");
        let diverged = mini_doc(10.0, 12.0, 25.0).replace(
            "\"all_bit_identical\":true",
            "\"all_bit_identical\":false",
        );
        let cur = distill(&parse_json(&diverged).expect("p")).expect("d");
        assert!(check(&base, &cur, DEFAULT_TOLERANCE).is_err());

        let other = mini_doc(10.0, 12.0, 25.0).replace("\"m\":32,\"k\":32,\"n\":32", "\"m\":64,\"k\":64,\"n\":64");
        let cur = distill(&parse_json(&other).expect("p")).expect("d");
        assert!(check(&base, &cur, DEFAULT_TOLERANCE).is_err());
    }
}
