//! Static-analysis pass for the FedSU reproduction workspace.
//!
//! `cargo run -p fedsu-xtask -- lint` lexes every workspace `.rs` source
//! ([`lexer`]), parses a lightweight item tree ([`ast`]), resolves `use`
//! aliases and local type hints ([`resolve`]), builds a name-based call
//! graph ([`callgraph`]), and runs the token-level rules ([`rules`]):
//! nondeterministic hash-collection iteration, wall-clock reads, truncating
//! casts in accounting statements, undocumented panics, non-evolvable record
//! schemas, panics on hot experiment paths, unchecked wire-byte/sim-time
//! arithmetic, and order-nondeterministic float accumulation.
//!
//! Findings are gated two ways: the empty-by-policy allow file
//! (`lint-allow.toml`, [`allowlist`]) and the ratchet baseline
//! (`lint-baseline.toml`, [`baseline`]) that tolerates pre-existing findings
//! while rejecting new ones and stale entries. `--format sarif` ([`sarif`])
//! emits SARIF 2.1.0 for CI annotation.
//!
//! Deliberately std-only: the gate must build in seconds on an offline CI
//! runner.

pub mod allocflow;
pub mod allowlist;
pub mod ast;
pub mod baseline;
pub mod benchcheck;
pub mod budget;
pub mod callgraph;
pub mod dataflow;
pub mod explain;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod workspace;

use callgraph::CallGraph;
use dataflow::WorkspaceFlow;
use rules::Diagnostic;
use std::collections::BTreeSet;
use std::path::Path;
use workspace::{SourceFile, SourceKind};

/// Result of a full lint run.
#[derive(Debug)]
pub struct LintReport {
    /// New findings: not baselined, not allow-listed (fail the run).
    pub violations: Vec<Diagnostic>,
    /// Findings matched by a `lint-baseline.toml` entry (tolerated).
    pub baselined: Vec<Diagnostic>,
    /// Findings waived by `lint-allow.toml`.
    pub suppressed: Vec<Diagnostic>,
    /// Allow entries that matched nothing (fail the run: stale waivers rot).
    pub unused_allows: Vec<allowlist::AllowEntry>,
    /// Baseline entries in scanned files that matched nothing (fail the run:
    /// the ratchet must shrink when findings are fixed).
    pub stale_baseline: Vec<baseline::BaselineEntry>,
    /// Allocation-family findings matched by an `alloc-budget.toml` entry
    /// (tolerated; see [`budget`]).
    pub budgeted: Vec<Diagnostic>,
    /// Budget entries in scanned files that matched nothing (fail the run:
    /// the alloc ratchet only turns one way, like the baseline).
    pub stale_budget: Vec<baseline::BaselineEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the gate should pass.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
            && self.unused_allows.is_empty()
            && self.stale_baseline.is_empty()
            && self.stale_budget.is_empty()
    }
}

/// Lints `files` applying allow entries from `allow_text`, ratchet entries
/// from `baseline_text`, and allocation-budget entries from `budget_text`.
///
/// # Errors
/// Returns a message when a file cannot be read or any gate file is
/// malformed.
pub fn lint_files(
    files: &[SourceFile],
    allow_text: &str,
    baseline_text: &str,
    budget_text: &str,
) -> Result<LintReport, String> {
    let allow_entries = allowlist::parse(allow_text).map_err(|e| e.to_string())?;
    let baseline_entries = baseline::parse(baseline_text).map_err(|e| e.to_string())?;
    let alloc_budget = budget::parse(budget_text).map_err(|e| e.to_string())?;

    // Phase 1: lex + parse every lintable file (the call graph needs the
    // whole workspace before any rule can run).
    let mut prepared: Vec<(&SourceFile, scan::PreparedSource)> = Vec::new();
    for f in files {
        if f.kind == SourceKind::TestOrBench {
            continue;
        }
        let text = std::fs::read_to_string(&f.abs)
            .map_err(|e| format!("{}: cannot read: {e}", f.rel))?;
        prepared.push((f, scan::prepare(&text)));
    }
    let graph_input: Vec<(String, &ast::ParsedFile)> =
        prepared.iter().map(|(f, p)| (f.rel.clone(), &p.file)).collect();
    let graph = CallGraph::build(&graph_input);
    let flow = WorkspaceFlow::build(&graph_input);

    // Phase 2: run the rules per file against the shared graph and flow.
    let mut diags = Vec::new();
    for (f, p) in &prepared {
        diags.extend(check_prepared(&f.rel, f.kind, p, &graph, &flow));
    }

    let (kept, suppressed, unused_allows) = allowlist::apply(diags, &allow_entries);
    let scanned: BTreeSet<String> = files.iter().map(|f| f.rel.clone()).collect();
    // The allocation families ratchet through alloc-budget.toml; everything
    // else goes through the baseline. Partition before gating so neither
    // file can waive the other's rules.
    let (alloc_diags, other_diags): (Vec<_>, Vec<_>) =
        kept.into_iter().partition(|d| rules::ALLOC_RULES.contains(&d.rule));
    let (violations, baselined, stale_baseline) =
        baseline::apply(other_diags, &baseline_entries, &scanned);
    let (alloc_new, budgeted, stale_budget) =
        budget::apply(alloc_diags, &alloc_budget, &scanned);
    let mut violations = violations;
    violations.extend(alloc_new);
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    Ok(LintReport {
        violations,
        baselined,
        suppressed,
        unused_allows,
        stale_baseline,
        budgeted,
        stale_budget,
        files_scanned: files.len(),
    })
}

/// Rule pass for one prepared file, with the target-kind policy applied:
/// library code gets the full set; examples skip the panic-centric rules (a
/// demo may unwrap, and nothing reaches it from the round loop anyway) and
/// the allocation families (a demo's allocations are not round-loop
/// traffic); tests and benches are exempt entirely (rules already skip
/// `#[cfg(test)]` spans inside library files — this extends the same policy
/// to whole test targets).
fn check_prepared(
    rel: &str,
    kind: SourceKind,
    p: &scan::PreparedSource,
    graph: &CallGraph,
    flow: &WorkspaceFlow,
) -> Vec<Diagnostic> {
    let mut diags = rules::check_all(rel, p, graph, flow);
    if kind == SourceKind::Example {
        diags.retain(|d| {
            d.rule != "no-unwrap"
                && d.rule != "panic-path"
                && !rules::ALLOC_RULES.contains(&d.rule)
        });
    }
    diags
}

/// Lints one source text in isolation (fixture tests and single-file use).
/// The call graph and dataflow facts are built from this file alone, so
/// `panic-path` only fires when the file itself contains a hot-path root and
/// cross-function lock cycles only form within the file.
pub fn lint_source(rel: &str, kind: SourceKind, text: &str) -> Vec<Diagnostic> {
    if kind == SourceKind::TestOrBench {
        return Vec::new();
    }
    let p = scan::prepare(text);
    let graph_input = vec![(rel.to_string(), &p.file)];
    let graph = CallGraph::build(&graph_input);
    let flow = WorkspaceFlow::build(&graph_input);
    check_prepared(rel, kind, &p, &graph, &flow)
}

/// Default location of the allow file, relative to the workspace root.
pub const ALLOW_FILE: &str = "crates/xtask/lint-allow.toml";

/// Reads a gate file (allow or baseline), treating a missing file as empty.
///
/// # Errors
/// Returns a message for I/O errors other than "not found".
pub fn read_gate_file(path: &Path) -> Result<String, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(format!("{}: cannot read: {e}", path.display())),
    }
}

/// Reads the allow file, treating a missing file as empty (nothing waived).
///
/// # Errors
/// Returns a message for I/O errors other than "not found".
pub fn read_allow_file(path: &Path) -> Result<String, String> {
    read_gate_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_targets_are_exempt() {
        let src = "fn helper() { v.pop().unwrap(); }\n";
        assert!(lint_source("crates/nn/tests/x.rs", SourceKind::TestOrBench, src).is_empty());
        assert_eq!(lint_source("crates/nn/src/x.rs", SourceKind::Library, src).len(), 1);
    }

    #[test]
    fn examples_skip_only_the_panic_rules() {
        let src = "use std::collections::HashMap;\nfn main() { x.unwrap(); }\n";
        let diags = lint_source("examples/demo.rs", SourceKind::Example, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hash-collections");
    }

    #[test]
    fn panic_path_activates_when_root_file_is_linted() {
        let src = "pub fn run() { let x = plan[0]; }\n";
        let diags = lint_source("crates/fl/src/experiment.rs", SourceKind::Library, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-path");
        // The same body in a non-root file has no hot path.
        assert!(lint_source("crates/fl/src/other.rs", SourceKind::Library, src).is_empty());
    }
}
