//! Static-analysis pass for the FedSU reproduction workspace.
//!
//! `cargo run -p fedsu-xtask -- lint` walks every workspace `.rs` source and
//! reports the five determinism/safety hazards the emulation's accounting
//! depends on (see [`rules`]): nondeterministic hash-collection iteration,
//! wall-clock reads in sim paths, truncating casts in byte/time accounting,
//! undocumented panics in library code, and record structs that cannot
//! deserialize older persisted runs.
//!
//! Deliberately std-only: the gate must build in seconds on an offline CI
//! runner. Suppressions live exclusively in the checked-in
//! `crates/xtask/lint-allow.toml` ([`allowlist`]), so every exception has a
//! reviewed, greppable reason.

pub mod allowlist;
pub mod rules;
pub mod scan;
pub mod workspace;

use rules::Diagnostic;
use std::path::Path;
use workspace::{SourceFile, SourceKind};

/// Result of a full lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Violations not covered by any allow entry (nonzero exit when non-empty).
    pub violations: Vec<Diagnostic>,
    /// Violations waived by `lint-allow.toml`.
    pub suppressed: Vec<Diagnostic>,
    /// Allow entries that matched nothing (also fail the run: stale waivers rot).
    pub unused_allows: Vec<allowlist::AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the gate should pass.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allows.is_empty()
    }
}

/// Lints `files`, applying the allow entries parsed from `allow_text`.
///
/// # Errors
/// Returns a message when a file cannot be read or the allow file is
/// malformed.
pub fn lint_files(files: &[SourceFile], allow_text: &str) -> Result<LintReport, String> {
    let entries = allowlist::parse(allow_text).map_err(|e| e.to_string())?;
    let mut diags = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f.abs)
            .map_err(|e| format!("{}: cannot read: {e}", f.rel))?;
        diags.extend(lint_source(&f.rel, f.kind, &text));
    }
    let (violations, suppressed, unused_allows) = allowlist::apply(diags, &entries);
    Ok(LintReport { violations, suppressed, unused_allows, files_scanned: files.len() })
}

/// Lints one source text with the rule subset appropriate to its target kind:
/// library code gets the full set; examples skip the no-panic rule (a demo
/// may unwrap); tests and benches are exempt entirely (rules already skip
/// `#[cfg(test)]` spans inside library files — this extends the same policy
/// to whole test targets).
pub fn lint_source(rel: &str, kind: SourceKind, text: &str) -> Vec<Diagnostic> {
    if kind == SourceKind::TestOrBench {
        return Vec::new();
    }
    let prepared = scan::prepare(text);
    let mut diags = rules::check_all(rel, &prepared);
    if kind == SourceKind::Example {
        diags.retain(|d| d.rule != "no-unwrap");
    }
    diags
}

/// Default location of the allow file, relative to the workspace root.
pub const ALLOW_FILE: &str = "crates/xtask/lint-allow.toml";

/// Reads the allow file, treating a missing file as empty (nothing waived).
///
/// # Errors
/// Returns a message for I/O errors other than "not found".
pub fn read_allow_file(path: &Path) -> Result<String, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(format!("{}: cannot read allow file: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_targets_are_exempt() {
        let src = "fn helper() { v.pop().unwrap(); }\n";
        assert!(lint_source("crates/nn/tests/x.rs", SourceKind::TestOrBench, src).is_empty());
        assert_eq!(lint_source("crates/nn/src/x.rs", SourceKind::Library, src).len(), 1);
    }

    #[test]
    fn examples_skip_only_the_panic_rule() {
        let src = "use std::collections::HashMap;\nfn main() { x.unwrap(); }\n";
        let diags = lint_source("examples/demo.rs", SourceKind::Example, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hash-collections");
    }
}
