//! A lightweight item tree over the token stream from [`crate::lexer`].
//!
//! This is deliberately not a full Rust AST: the lint rules need to know
//! *where things are* — function bodies (token ranges), struct fields and
//! their attributes, `use` declarations with aliases, and which token spans
//! are `#[cfg(test)]` code — not full expression structure. Expression-level
//! matching happens directly on the token slices the items delimit.

use crate::lexer::{Token, TokenKind};

/// One `use` declaration leaf: the full original path and the name it binds
/// in this file (`use a::b::C as D` binds `D` to path `[a, b, C]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// Path segments of the imported item, outermost first.
    pub path: Vec<String>,
    /// Local binding name (the alias, or the path's last segment).
    pub name: String,
}

/// A function (free, method, or trait default) with its body span.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, when inside one.
    pub owner: Option<String>,
    /// Token range of the signature: from the `fn` keyword up to (not
    /// including) the body's `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Token range of the body including both braces, when present.
    pub body: Option<(usize, usize)>,
    /// `true` when the function (or an enclosing item) is test-only code.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One named field of a braced struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Attribute texts directly above the field (tokens joined by spaces).
    pub attrs: Vec<String>,
    /// 1-based line of the field name.
    pub line: usize,
}

/// A struct definition with enough shape for the serde-default rule.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Attribute texts above the struct (tokens joined by spaces).
    pub attrs: Vec<String>,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldItem>,
    /// `true` for `struct S { … }` (only braced structs have named fields).
    pub braced: bool,
    /// `true` when the struct is inside test-only code.
    pub in_test: bool,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
}

/// A parsed file: tokens plus the item structure the rules consume.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// The token stream (rules index into this).
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: Vec<bool>,
    /// Every `use` binding in the file (module scoping is ignored — the
    /// rules only need "is this name an alias of a hazardous type").
    pub uses: Vec<UseAlias>,
    /// Every function, in source order.
    pub fns: Vec<FnItem>,
    /// Every struct, in source order.
    pub structs: Vec<StructItem>,
}

/// Parser state threaded through item recursion.
struct Ctx {
    owner: Option<String>,
    in_test: bool,
}

/// Parses a token stream into the item structure.
pub fn parse(tokens: Vec<Token>) -> ParsedFile {
    let mut file = ParsedFile {
        in_test: vec![false; tokens.len()],
        tokens,
        uses: Vec::new(),
        fns: Vec::new(),
        structs: Vec::new(),
    };
    let end = file.tokens.len();
    let mut pos = 0usize;
    parse_items(&mut file, &mut pos, end, &Ctx { owner: None, in_test: false });
    file
}

/// `true` when a `cfg(...)`-style attribute text involves the `test`
/// predicate, or the attribute is `#[test]` itself.
fn attr_is_test(attr: &str) -> bool {
    let mut word = String::new();
    let mut saw_cfg_or_bare = attr.trim() == "test";
    for c in attr.chars().chain(std::iter::once(' ')) {
        if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            if word == "test" {
                saw_cfg_or_bare = true;
            }
            word.clear();
        }
    }
    saw_cfg_or_bare
}

/// Parses items in `[*pos, end)`, appending into `file`.
fn parse_items(file: &mut ParsedFile, pos: &mut usize, end: usize, ctx: &Ctx) {
    while *pos < end {
        let item_start = *pos;
        let attrs = collect_attrs(&file.tokens, pos, end);
        let in_test = ctx.in_test || attrs.iter().any(|a| attr_is_test(a));
        skip_visibility(&file.tokens, pos, end);
        // Leading modifiers before `fn`.
        while *pos < end
            && file.tokens[*pos].kind == TokenKind::Ident
            && matches!(file.tokens[*pos].text.as_str(), "const" | "async" | "unsafe" | "extern")
        {
            // `const` may start a const item instead of a `const fn`.
            if file.tokens[*pos].text == "const"
                && !next_is(&file.tokens, *pos + 1, end, &["fn", "async", "unsafe", "extern"])
            {
                break;
            }
            if file.tokens[*pos].text == "extern" {
                // `extern "C" fn` (modifier) vs `extern crate`/`extern {}`.
                let after = if *pos + 1 < end && file.tokens[*pos + 1].kind == TokenKind::Str {
                    *pos + 2
                } else {
                    *pos + 1
                };
                if !next_is(&file.tokens, after, end, &["fn"]) {
                    break;
                }
            }
            *pos += 1;
            if *pos < end && file.tokens[*pos].kind == TokenKind::Str {
                *pos += 1; // the ABI string of `extern "C" fn`
            }
        }
        if *pos >= end {
            mark_test(file, item_start, end, in_test);
            break;
        }
        let tok = &file.tokens[*pos];
        let kw = if tok.kind == TokenKind::Ident { tok.text.as_str() } else { "" };
        match kw {
            "fn" => parse_fn(file, pos, end, ctx, in_test, item_start),
            "struct" => parse_struct(file, pos, end, attrs, in_test, item_start),
            "mod" => {
                *pos += 1;
                skip_name(&file.tokens, pos, end);
                if *pos < end && file.tokens[*pos].is_punct("{") {
                    let close = matching_brace(&file.tokens, *pos, end);
                    *pos += 1;
                    let inner =
                        Ctx { owner: ctx.owner.clone(), in_test: in_test || ctx.in_test };
                    parse_items(file, pos, close, &inner);
                    *pos = (close + 1).min(end);
                } else {
                    skip_past_semi(&file.tokens, pos, end);
                }
            }
            "impl" | "trait" => {
                let is_impl = kw == "impl";
                *pos += 1;
                let owner = if is_impl {
                    parse_impl_header(&file.tokens, pos, end)
                } else {
                    let n = ident_text(&file.tokens, *pos);
                    skip_to_block_or_semi(&file.tokens, pos, end);
                    n
                };
                if *pos < end && file.tokens[*pos].is_punct("{") {
                    let close = matching_brace(&file.tokens, *pos, end);
                    *pos += 1;
                    let inner = Ctx { owner, in_test };
                    parse_items(file, pos, close, &inner);
                    *pos = (close + 1).min(end);
                } else {
                    skip_past_semi(&file.tokens, pos, end);
                }
            }
            "use" => {
                *pos += 1;
                parse_use_tree(file, pos, end, &mut Vec::new());
                skip_past_semi(&file.tokens, pos, end);
            }
            "enum" | "union" => {
                *pos += 1;
                skip_to_block_or_semi(&file.tokens, pos, end);
                if *pos < end && file.tokens[*pos].is_punct("{") {
                    *pos = (matching_brace(&file.tokens, *pos, end) + 1).min(end);
                }
            }
            "macro_rules" => {
                *pos += 1; // `!`, name, then a balanced group
                while *pos < end && !file.tokens[*pos].is_punct("{") {
                    *pos += 1;
                }
                if *pos < end {
                    *pos = (matching_brace(&file.tokens, *pos, end) + 1).min(end);
                }
            }
            "type" | "static" | "const" => {
                *pos += 1;
                skip_past_semi(&file.tokens, pos, end);
            }
            "extern" => {
                // `extern crate x;` or `extern { … }`.
                *pos += 1;
                skip_to_block_or_semi(&file.tokens, pos, end);
                if *pos < end && file.tokens[*pos].is_punct("{") {
                    *pos = (matching_brace(&file.tokens, *pos, end) + 1).min(end);
                } else {
                    *pos += 1;
                }
            }
            _ => {
                // Unknown leading token (stray macro call, misparse):
                // advance one token so parsing always terminates.
                *pos += 1;
            }
        }
        mark_test(file, item_start, *pos, in_test);
    }
}

/// Marks `[from, to)` as test tokens when `in_test`.
fn mark_test(file: &mut ParsedFile, from: usize, to: usize, in_test: bool) {
    if in_test {
        let hi = to.min(file.in_test.len());
        for flag in &mut file.in_test[from..hi] {
            *flag = true;
        }
    }
}

/// Collects `#[…]` attribute groups (skipping inner `#![…]` ones), returning
/// each as its tokens joined by single spaces.
fn collect_attrs(tokens: &[Token], pos: &mut usize, end: usize) -> Vec<String> {
    let mut attrs = Vec::new();
    while *pos < end && tokens[*pos].is_punct("#") {
        let mut k = *pos + 1;
        let inner = k < end && tokens[k].is_punct("!");
        if inner {
            k += 1;
        }
        if k >= end || !tokens[k].is_punct("[") {
            break;
        }
        let close = matching_delim(tokens, k, end, "[", "]");
        if !inner {
            let text: Vec<&str> =
                tokens[k + 1..close.min(end)].iter().map(|t| t.text.as_str()).collect();
            attrs.push(text.join(" "));
        }
        *pos = (close + 1).min(end);
    }
    attrs
}

/// Skips `pub`, `pub(crate)`, `pub(in path)` etc.
fn skip_visibility(tokens: &[Token], pos: &mut usize, end: usize) {
    if *pos < end && tokens[*pos].is_ident("pub") {
        *pos += 1;
        if *pos < end && tokens[*pos].is_punct("(") {
            *pos = (matching_delim(tokens, *pos, end, "(", ")") + 1).min(end);
        }
    }
}

/// `true` when the token at `at` is an ident with one of the given texts.
fn next_is(tokens: &[Token], at: usize, end: usize, texts: &[&str]) -> bool {
    at < end && texts.iter().any(|t| tokens[at].is_ident(t))
}

/// The ident text at `at`, if any.
fn ident_text(tokens: &[Token], at: usize) -> Option<String> {
    tokens.get(at).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.clone())
}

/// Skips one identifier when present.
fn skip_name(tokens: &[Token], pos: &mut usize, end: usize) {
    if *pos < end && tokens[*pos].kind == TokenKind::Ident {
        *pos += 1;
    }
}

/// Index of the `}` matching the `{` at `open` (or `end - 1` when
/// unterminated).
fn matching_brace(tokens: &[Token], open: usize, end: usize) -> usize {
    matching_delim(tokens, open, end, "{", "}")
}

/// Index of the closing delimiter matching the opener at `open`.
fn matching_delim(tokens: &[Token], open: usize, end: usize, o: &str, c: &str) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < end {
        if tokens[k].is_punct(o) {
            depth += 1;
        } else if tokens[k].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end.saturating_sub(1)
}

/// Advances past the next `;` at bracket depth zero (consuming it), skipping
/// balanced `{}`/`()`/`[]` groups on the way.
fn skip_past_semi(tokens: &[Token], pos: &mut usize, end: usize) {
    while *pos < end {
        let t = &tokens[*pos];
        if t.is_punct(";") {
            *pos += 1;
            return;
        }
        if t.is_punct("{") {
            *pos = (matching_brace(tokens, *pos, end) + 1).min(end);
            continue;
        }
        if t.is_punct("(") {
            *pos = (matching_delim(tokens, *pos, end, "(", ")") + 1).min(end);
            continue;
        }
        if t.is_punct("[") {
            *pos = (matching_delim(tokens, *pos, end, "[", "]") + 1).min(end);
            continue;
        }
        *pos += 1;
    }
}

/// Advances to the next top-level `{` or past a terminating `;`, skipping
/// balanced paren/bracket groups (so braces inside them don't confuse it).
fn skip_to_block_or_semi(tokens: &[Token], pos: &mut usize, end: usize) {
    while *pos < end {
        let t = &tokens[*pos];
        if t.is_punct("{") {
            return;
        }
        if t.is_punct(";") {
            return;
        }
        if t.is_punct("(") {
            *pos = (matching_delim(tokens, *pos, end, "(", ")") + 1).min(end);
            continue;
        }
        if t.is_punct("[") {
            *pos = (matching_delim(tokens, *pos, end, "[", "]") + 1).min(end);
            continue;
        }
        *pos += 1;
    }
}

/// Parses `fn name …` starting at the `fn` keyword.
fn parse_fn(
    file: &mut ParsedFile,
    pos: &mut usize,
    end: usize,
    ctx: &Ctx,
    in_test: bool,
    _item_start: usize,
) {
    let fn_kw = *pos;
    let line = file.tokens[fn_kw].line;
    *pos += 1;
    let name = ident_text(&file.tokens, *pos).unwrap_or_default();
    skip_name(&file.tokens, pos, end);
    skip_to_block_or_semi(&file.tokens, pos, end);
    let sig = (fn_kw, *pos);
    let body = if *pos < end && file.tokens[*pos].is_punct("{") {
        let close = matching_brace(&file.tokens, *pos, end);
        let b = (*pos, close);
        *pos = (close + 1).min(end);
        Some(b)
    } else {
        if *pos < end {
            *pos += 1; // the `;` of a bodyless trait method
        }
        None
    };
    file.fns.push(FnItem {
        name,
        owner: ctx.owner.clone(),
        sig,
        body,
        in_test: in_test || ctx.in_test,
        line,
    });
}

/// Parses the `impl` header after the keyword: skips generics, returns the
/// implemented type's name (for `impl Trait for Type`, the `Type`), and
/// leaves `pos` at the opening `{` (or a terminating `;`).
fn parse_impl_header(tokens: &[Token], pos: &mut usize, end: usize) -> Option<String> {
    // Generic parameters: skip a balanced `<…>` (counting `<<`/`>>` as two).
    if *pos < end && (tokens[*pos].is_punct("<") || tokens[*pos].is_punct("<<")) {
        skip_angles(tokens, pos, end);
    }
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while *pos < end {
        let t = &tokens[*pos];
        if t.is_punct("{") || t.is_punct(";") {
            break;
        }
        if t.is_ident("for") {
            saw_for = true;
            *pos += 1;
            continue;
        }
        if t.is_ident("where") {
            // Bounds follow; the type name is settled.
            skip_to_block_or_semi(tokens, pos, end);
            break;
        }
        if t.is_punct("<") || t.is_punct("<<") {
            skip_angles(tokens, pos, end);
            continue;
        }
        if t.is_punct("(") {
            *pos = (matching_delim(tokens, *pos, end, "(", ")") + 1).min(end);
            continue;
        }
        if t.kind == TokenKind::Ident {
            if saw_for {
                after_for = Some(t.text.clone());
            } else {
                last_ident = Some(t.text.clone());
            }
        }
        *pos += 1;
    }
    after_for.or(last_ident)
}

/// Skips a balanced angle-bracket group starting at `<` (or `<<`), counting
/// the chars inside multi-char puncts.
fn skip_angles(tokens: &[Token], pos: &mut usize, end: usize) {
    let mut depth = 0i64;
    while *pos < end {
        let t = &tokens[*pos];
        if t.kind == TokenKind::Punct {
            for c in t.text.chars() {
                match c {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            // `->` contains `>` but closes nothing.
            if t.text == "->" {
                depth += 1;
            }
        }
        *pos += 1;
        if depth <= 0 {
            return;
        }
    }
}

/// Parses `struct Name …` starting at the `struct` keyword.
fn parse_struct(
    file: &mut ParsedFile,
    pos: &mut usize,
    end: usize,
    attrs: Vec<String>,
    in_test: bool,
    _item_start: usize,
) {
    let line = file.tokens[*pos].line;
    *pos += 1;
    let name = ident_text(&file.tokens, *pos).unwrap_or_default();
    skip_name(&file.tokens, pos, end);
    skip_to_block_or_semi(&file.tokens, pos, end);
    let mut item =
        StructItem { name, attrs, fields: Vec::new(), braced: false, in_test, line };
    if *pos < end && file.tokens[*pos].is_punct("{") {
        item.braced = true;
        let close = matching_brace(&file.tokens, *pos, end);
        let mut k = *pos + 1;
        while k < close {
            let field_attrs = {
                let mut fp = k;
                let a = collect_attrs(&file.tokens, &mut fp, close);
                k = fp;
                a
            };
            skip_visibility(&file.tokens, &mut k, close);
            let Some(fname) = ident_text(&file.tokens, k) else { break };
            let fline = file.tokens[k].line;
            k += 1;
            if k < close && file.tokens[k].is_punct(":") {
                item.fields.push(FieldItem { name: fname, attrs: field_attrs, line: fline });
                // Skip the type up to the next comma at depth zero (commas
                // inside generics/tuples/arrays are nested in delimiters we
                // skip wholesale; angle depth is tracked explicitly).
                let mut angle = 0i64;
                while k < close {
                    let t = &file.tokens[k];
                    if t.is_punct("(") {
                        k = (matching_delim(&file.tokens, k, close, "(", ")") + 1).min(close);
                        continue;
                    }
                    if t.is_punct("[") {
                        k = (matching_delim(&file.tokens, k, close, "[", "]") + 1).min(close);
                        continue;
                    }
                    if t.kind == TokenKind::Punct {
                        for c in t.text.chars() {
                            match c {
                                '<' => angle += 1,
                                '>' => angle -= 1,
                                _ => {}
                            }
                        }
                        if t.text == "->" {
                            angle += 1;
                        }
                    }
                    if t.is_punct(",") && angle <= 0 {
                        k += 1;
                        break;
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        *pos = (close + 1).min(end);
    } else {
        // Tuple or unit struct: fields are positional, nothing to default.
        skip_past_semi(&file.tokens, pos, end);
    }
    file.structs.push(item);
}

/// Parses one `use` tree after the `use` keyword (or after a `::` inside a
/// group), appending leaf bindings. `prefix` holds the segments so far.
fn parse_use_tree(file: &mut ParsedFile, pos: &mut usize, end: usize, prefix: &mut Vec<String>) {
    let depth_at_entry = prefix.len();
    loop {
        let Some(t) = file.tokens.get(*pos) else { break };
        if t.is_punct(";") || t.is_punct(",") || t.is_punct("}") {
            // A path ending without `as`/group binds its last segment.
            if prefix.len() > depth_at_entry || (depth_at_entry == 0 && !prefix.is_empty()) {
                if let Some(last) = prefix.last() {
                    if last != "*" {
                        file.uses.push(UseAlias { path: prefix.clone(), name: last.clone() });
                    }
                }
            }
            break;
        }
        if t.kind == TokenKind::Ident && t.text == "as" {
            *pos += 1;
            let alias = ident_text(&file.tokens, *pos).unwrap_or_default();
            skip_name(&file.tokens, pos, end);
            if !alias.is_empty() && alias != "_" {
                file.uses.push(UseAlias { path: prefix.clone(), name: alias });
            }
            // Consume up to the tree separator for the caller.
            while *pos < end {
                let t = &file.tokens[*pos];
                if t.is_punct(";") || t.is_punct(",") || t.is_punct("}") {
                    break;
                }
                *pos += 1;
            }
            break;
        }
        if t.is_punct("{") {
            let close = matching_brace(&file.tokens, *pos, end);
            *pos += 1;
            while *pos < close {
                let mut sub = prefix.clone();
                parse_use_tree(file, pos, close, &mut sub);
                if *pos < close && file.tokens[*pos].is_punct(",") {
                    *pos += 1;
                }
            }
            *pos = (close + 1).min(end);
            // Nothing binds after a group at this level.
            break;
        }
        if t.kind == TokenKind::Ident || t.kind == TokenKind::RawIdent || t.is_punct("*") {
            prefix.push(t.text.clone());
            *pos += 1;
            continue;
        }
        if t.is_punct("::") {
            *pos += 1;
            continue;
        }
        *pos += 1;
    }
    prefix.truncate(depth_at_entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(lex(src))
    }

    #[test]
    fn functions_and_bodies() {
        let f = parse_src("fn a() { 1 + 2 }\npub fn b(x: u32) -> u32 { x }\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "a");
        assert_eq!(f.fns[1].name, "b");
        assert!(f.fns[1].body.is_some());
        assert_eq!(f.fns[1].line, 2);
    }

    #[test]
    fn impl_methods_carry_owner() {
        let f = parse_src("impl Foo { fn m(&self) {} }\nimpl Tr for Bar { fn n(&self) {} }");
        assert_eq!(f.fns[0].owner.as_deref(), Some("Foo"));
        assert_eq!(f.fns[1].owner.as_deref(), Some("Bar"));
    }

    #[test]
    fn generic_impl_headers_parse() {
        let f = parse_src("impl<T: Clone> Stack<T> { fn push(&mut self, t: T) {} }");
        assert_eq!(f.fns[0].owner.as_deref(), Some("Stack"));
    }

    #[test]
    fn cfg_test_marks_tokens_and_fns() {
        let f = parse_src("fn lib() {}\n#[cfg(test)]\nmod t {\n  fn helper() {}\n}\nfn lib2() {}");
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test, "fn inside #[cfg(test)] mod");
        assert!(!f.fns[2].in_test);
        // Tokens of the test mod are marked; surrounding fns are not.
        let helper_tok = f.tokens.iter().position(|t| t.is_ident("helper")).expect("helper token");
        assert!(f.in_test[helper_tok]);
        assert!(!f.in_test[0]);
    }

    #[test]
    fn test_attribute_marks_fn() {
        let f = parse_src("#[test]\nfn t() { x.unwrap(); }");
        assert!(f.fns[0].in_test);
    }

    #[test]
    fn cfg_any_test_marks_fn() {
        let f = parse_src("#[cfg(any(test, feature = \"x\"))]\nfn helper() {}");
        assert!(f.fns[0].in_test);
    }

    #[test]
    fn use_aliases_collected() {
        let f = parse_src(
            "use std::collections::HashMap as Map;\nuse std::time::{Instant, SystemTime as St};\nuse a::b::*;",
        );
        assert_eq!(f.uses.len(), 3);
        assert_eq!(f.uses[0].name, "Map");
        assert_eq!(f.uses[0].path, vec!["std", "collections", "HashMap"]);
        assert_eq!(f.uses[1].name, "Instant");
        assert_eq!(f.uses[2].name, "St");
        assert_eq!(f.uses[2].path, vec!["std", "time", "SystemTime"]);
    }

    #[test]
    fn struct_fields_and_attrs() {
        let f = parse_src(
            "#[derive(Serialize, Deserialize)]\npub struct FooRecord {\n    pub a: u64,\n    #[serde(default)]\n    pub b: BTreeMap<u64, u32>,\n    pub c: f32,\n}",
        );
        let s = &f.structs[0];
        assert_eq!(s.name, "FooRecord");
        assert!(s.braced);
        assert!(s.attrs[0].contains("Deserialize"));
        let names: Vec<&str> = s.fields.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(s.fields[1].attrs[0].contains("serde"));
        assert!(s.fields[0].attrs.is_empty());
    }

    #[test]
    fn tuple_and_unit_structs() {
        let f = parse_src("struct A(u32, f64);\nstruct B;");
        assert_eq!(f.structs.len(), 2);
        assert!(!f.structs[0].braced);
        assert!(f.structs[1].fields.is_empty());
    }

    #[test]
    fn nested_mods_recurse() {
        let f = parse_src("mod outer { mod inner { fn deep() {} } }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "deep");
    }

    #[test]
    fn trait_default_methods() {
        let f = parse_src("trait T { fn required(&self); fn provided(&self) { todo() } }");
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].body.is_none());
        assert!(f.fns[1].body.is_some());
        assert_eq!(f.fns[1].owner.as_deref(), Some("T"));
    }

    #[test]
    fn where_clause_fn_finds_body() {
        let f = parse_src("fn g<T>(t: T) -> Vec<T> where T: Clone { vec![t] }");
        assert!(f.fns[0].body.is_some());
        assert_eq!(f.fns[0].name, "g");
    }

    #[test]
    fn const_item_vs_const_fn() {
        let f = parse_src("const X: u32 = 1;\nconst fn c() -> u32 { 2 }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "c");
    }
}
