//! Lint fixture: seeds exactly one `wall-clock` violation.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn round_duration() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
