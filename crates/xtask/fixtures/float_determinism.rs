//! Fixture for the `float-determinism` rule: linted AS IF it were under
//! `crates/nn/src/` (the test passes that rel path). Exactly one finding:
//! the float sum over `.values()`. The slice-ordered sums below must NOT
//! fire, and nothing fires when the same text is linted outside the scoped
//! crates.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn unstable_mean(per_client_loss: &ClientMap) -> f64 {
    per_client_loss.values().sum::<f64>()
}

fn stable_mean(losses: &[f64]) -> f64 {
    losses.iter().sum::<f64>() / losses.len() as f64
}

fn stable_fold(losses: &[f32]) -> f32 {
    losses.iter().fold(0.0, |acc, l| acc + l)
}

fn integer_tally(counts: &ClientMap) -> usize {
    counts.values().map(|v| v.len()).fold(0, |a, b| a + b)
}
