//! Fixture for the `nondeterminism-taint` rule (wire-sink family): taint
//! survives tuple destructuring — both `key` and `payload` pick up the
//! HashMap-iteration source, and `payload` reaches the wire through
//! `send_bytes`. Expect one nondeterminism-taint finding at the send
//! (line 12) plus `hash-collections` in the signature (line 8).
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn forward(routes: &HashMap<u64, Vec<u8>>, bus: &Bus) {
    let Some((key, payload)) = routes.iter().next() else {
        return;
    };
    bus.send_bytes(*key, payload);
}
