//! Fixture: a renamed import is still the same hazardous type. Seeds two
//! `hash-collections` findings: the `use … as` line and the aliased usage.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

use std::collections::HashMap as Map;

fn select_clients(weights: &Map<usize, f32>) -> usize {
    weights.len()
}
