//! Negative fixture for the `channel-discipline` rule: zero findings,
//! linted AS IF it were `crates/tensor/src/par.rs` so the worker closure
//! is live. `worker_loop` drains through the NON-blocking `try_recv`; the
//! `#[cfg(test)]` double with the same callee name is worker-reachable by
//! name but test code is exempt; `relay` sends in a loop that drains on the
//! same path; `broadcast` sends in a bounded `for`.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn worker_loop(queue: &JobQueue) {
    while let Some(job) = pop_bounded(queue) {
        job.run();
    }
}

fn pop_bounded(queue: &JobQueue) -> Option<Job> {
    queue.try_recv().ok()
}

pub fn relay(tx: &Sender<Frame>, rx: &Receiver<Frame>) {
    loop {
        let frame = rx.recv();
        tx.send(frame);
    }
}

pub fn broadcast(tx: &Sender<Frame>, frames: Vec<Frame>) {
    for frame in frames {
        tx.send(frame);
    }
}

#[cfg(test)]
mod tests {
    /// Blocking test double sharing the worker helper's name: the
    /// name-based closure reaches it, but test code is exempt.
    fn pop_bounded(queue: &SlowQueue) -> Option<Job> {
        queue.recv().ok()
    }
}
