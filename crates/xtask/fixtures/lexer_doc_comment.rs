//! Lexer fixture: hazards inside doc comments must yield ZERO diagnostics.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

/// Never call `Instant::now()` here; the emulator clock replaces it.
/// A `HashMap<ClientId, f32>` would also be wrong: iteration order.
///
/// ```
/// let t = std::time::Instant::now(); // doc-test code is doc text to us
/// let v = series.last().unwrap();
/// ```
fn documented() -> u32 {
    42
}

//! (trailing inner doc mention of SystemTime for good measure)
