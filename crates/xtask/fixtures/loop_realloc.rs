//! Seeded `loop-realloc` fixture: growth calls inside loops. Positives:
//! the unreserved `push` in `gather` (line 10) and the unreserved
//! `extend` in `merge` (line 18). Negatives: `gather_reserved` reserves
//! capacity up front, `fill_sized` starts from a sized `vec!` literal,
//! and the `BTreeMap` insert in `count_rounds` never shifts elements.

pub fn gather(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i);
    }
    out
}

pub fn merge(parts: &[Vec<usize>]) -> Vec<usize> {
    let mut all = Vec::new();
    for part in parts {
        all.extend(part.iter().copied());
    }
    all
}

pub fn gather_reserved(n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(i);
    }
    out
}

pub fn fill_sized(n: usize) -> Vec<usize> {
    let mut out = vec![0usize; n];
    for i in 0..n {
        out.extend([i]);
    }
    out
}

pub fn count_rounds(totals: &mut BTreeMap<usize, usize>, n: usize) {
    for i in 0..n {
        totals.insert(i, i);
    }
}
