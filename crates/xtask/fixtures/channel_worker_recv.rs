//! Fixture for the `channel-discipline` rule (worker-recv family): linted
//! AS IF it were `crates/tensor/src/par.rs`, so `worker_loop` seeds the
//! pool-worker closure. Exactly one finding: the blocking recv in
//! `fetch_job` (line 15), one call hop from the worker body. The identical
//! shape in `offline_poll` is not worker-reachable and must NOT fire.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn worker_loop(rx: &Receiver<Job>) {
    while let Some(job) = fetch_job(rx) {
        job.run();
    }
}

fn fetch_job(rx: &Receiver<Job>) -> Option<Job> {
    rx.recv().ok()
}

fn offline_poll(rx: &Receiver<Job>) -> Option<Job> {
    rx.recv().ok()
}
