//! Negative fixture for the `nondeterminism-taint` rule, linted AS IF it
//! were `crates/tensor/src/matmul.rs` so float-accumulator sinks are in
//! scope. Zero findings: `dot_block` accumulates over slice iteration —
//! ordered, so `acc` is clean even though it is a float sink — and
//! `partition_rows` taints `threads` without ever reaching a sink. This
//! mirrors the real ascending-p accumulation in the tensor kernels.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn dot_block(lhs: &[f32], rhs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in lhs.iter().zip(rhs.iter()) {
        acc += x * y;
    }
    acc
}

pub fn partition_rows(rows: usize) -> usize {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    rows.div_ceil(threads.max(1))
}
