//! Fixture for the `nondeterminism-taint` rule (record-sink family): a
//! value drawn from HashMap iteration flows through two `let` bindings
//! into a `RoundRecord` field literal. Expect one nondeterminism-taint
//! finding at the `train_loss` field (line 14); the HashMap in the
//! signature also trips `hash-collections` (line 9) — the integration
//! test asserts both.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn summarize(losses: &HashMap<u32, f32>) -> RoundRecord {
    let first = losses.values().next().copied().unwrap_or(0.0);
    let next = first * 0.5;
    RoundRecord {
        round: 0,
        train_loss: next,
    }
}
