//! Seeded `hot-alloc` fixture: `run` is the round-loop root when this
//! file is linted as `crates/fl/src/experiment.rs`. Positives: the
//! `vec!` in `run` (line 10) and the `.collect()` in `step` (line 18),
//! one call below the root. Negatives: the `with_capacity` behind the
//! setup-named `build_model` and the cold `debug_dump`, which the hot
//! path never calls. Under any other path there is no root and the
//! whole file is silent.

pub fn run(rounds: usize) {
    let plan = vec![0u32; rounds];
    for _ in 0..rounds {
        step(&plan);
    }
    build_model(rounds);
}

fn step(plan: &[u32]) {
    let doubled: Vec<u32> = plan.iter().map(|p| p + 1).collect();
    drop(doubled);
}

fn build_model(n: usize) -> Vec<u32> {
    let mut weights = Vec::with_capacity(n);
    weights.push(1);
    weights
}

fn debug_dump(plan: &[u32]) {
    let copy = plan.to_vec();
    drop(copy);
}
