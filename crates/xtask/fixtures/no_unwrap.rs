//! Lint fixture: seeds exactly one `no-unwrap` violation.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn last(values: &[f32]) -> f32 {
    *values.last().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_fine() {
        // Inside #[cfg(test)]: must NOT fire.
        let v = vec![1.0f32];
        let _ = *v.last().unwrap();
    }
}
