//! Fixture for the `channel-discipline` rule (send-after-close family):
//! `finish` sends on `tx` after dropping it — every such send errors at
//! runtime. Exactly one finding (line 9); `handoff` drops a DIFFERENT
//! endpoint first and must NOT fire.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn finish(tx: Sender<Chunk>, last: Chunk) {
    drop(tx);
    tx.send(last);
}

pub fn handoff(tx: Sender<Chunk>, rx: Receiver<Chunk>, chunk: Chunk) {
    drop(rx);
    tx.send(chunk);
}
