//! Fixture for the `panic-path` rule: linted AS IF it were
//! `crates/fl/src/experiment.rs` (the test passes that rel path), so `run`
//! is a hot-path root. Exactly one finding: the indexing inside `train_one`,
//! two call hops from `run`. The same indexing in `offline_report` must NOT
//! fire — nothing reaches it from a root.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn run(plan: &[usize]) -> usize {
    train_all(plan)
}

fn train_all(plan: &[usize]) -> usize {
    train_one(plan)
}

fn train_one(plan: &[usize]) -> usize {
    plan[0]
}

fn offline_report(plan: &[usize]) -> Option<usize> {
    let first = plan.first().copied();
    let _cold_index = plan.len().checked_sub(1).map(|i| plan[i]);
    first
}
