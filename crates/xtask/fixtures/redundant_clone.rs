//! Seeded `redundant-clone` fixture: copies of locals that are never
//! read again. Positives: the `payload` clone in `upload` (line 9) and
//! the `history.to_vec()` in `archive` (line 14). Negatives: `broadcast`
//! clones a loop-carried binding (read again on the next iteration), and
//! `audit` reads `ledger` after the clone.

pub fn upload() {
    let payload = encode();
    emit(payload.clone());
}

pub fn archive() {
    let history = collect_rounds();
    stash(history.to_vec());
}

pub fn broadcast() {
    let frame = encode();
    for _ in 0..3 {
        emit(frame.clone());
    }
}

pub fn audit() {
    let ledger = encode();
    emit(ledger.clone());
    verify(&ledger);
}
