//! Fixture for the `lock-order` rule (poison-leak family): `catch_unwind`
//! runs a job while the queue guard is held — a swallowed panic leaves the
//! lock poisoned for every later acquirer. Exactly one finding (line 8).
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn run_job(jobs: &Mutex<Vec<Job>>, job: Job) {
    let queue = jobs.lock();
    let outcome = catch_unwind(AssertUnwindSafe(job));
    queue.push_outcome(outcome);
}
