//! Lexer fixture: hazards inside nested block comments must yield ZERO
//! diagnostics. Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

/* outer comment
   /* nested: use std::collections::HashMap;
      let t0 = std::time::Instant::now();
   */
   still inside the OUTER comment after the nested close:
   x.unwrap(); total_bytes + extra_bytes; SystemTime::now()
*/
fn clean() -> u32 {
    41
}
