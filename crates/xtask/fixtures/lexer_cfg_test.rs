//! Lexer fixture: hazards inside `#[cfg(test)]` items must yield ZERO
//! diagnostics. Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn library_code() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn wall_clock_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        let total_bytes = 4u64;
        let doubled = total_bytes + total_bytes;
        assert!(doubled == 8 && t0.elapsed().as_nanos() < u128::MAX);
        m.get(&1).unwrap();
    }
}

#[cfg(any(test, feature = "bench-helpers"))]
fn helper_with_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
