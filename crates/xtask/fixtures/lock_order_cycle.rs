//! Fixture for the `lock-order` rule (cycle family): `ingest` takes
//! `fills` then `stats`, `drain` takes `stats` then `fills` — the classic
//! ABBA deadlock. Expect exactly two findings, one per inner acquisition
//! (lines 9 and 15); the consistent-order `audit` below must NOT fire.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn ingest(fills: &Mutex<Vec<u8>>, stats: &Mutex<u64>) {
    let f = fills.lock();
    let s = stats.lock();
    publish(&f, &s);
}

pub fn drain(fills: &Mutex<Vec<u8>>, stats: &Mutex<u64>) {
    let s = stats.lock();
    let f = fills.lock();
    publish(&f, &s);
}

pub fn audit(fills: &Mutex<Vec<u8>>, totals: &Mutex<u64>) {
    let f = fills.lock();
    let t = totals.lock();
    publish(&f, &t);
}
