//! Negative fixture for the `lock-order` rule: zero findings. `publish`
//! drops its guard before the send; `rebind` shadows the guard binding
//! (ending the first guard's liveness) and drops the second before
//! sending; both functions acquire in one global order.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn publish(state: &Mutex<Vec<Frame>>, tx: &Sender<Frame>) {
    let guard = state.lock();
    let frame = guard.pop_front();
    drop(guard);
    tx.send(frame);
}

pub fn rebind(first: &Mutex<u64>, second: &Mutex<u64>, tx: &Sender<u64>) {
    let g = first.lock();
    let a = read_value(&g);
    let g = second.lock();
    let b = read_value(&g);
    drop(g);
    tx.send(combine(a, b));
}
