//! Lexer fixture: hazard names inside raw strings must yield ZERO
//! diagnostics. Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn describe() -> &'static str {
    r#"use std::collections::HashMap; let t = Instant::now(); x.unwrap()"#
}

fn describe_hashes() -> &'static str {
    // Raw string with extra hashes, containing a quote-hash sequence that a
    // naive scanner would treat as the terminator.
    r##"HashSet "# still inside " SystemTime"##
}

fn byte_raw() -> &'static [u8] {
    br#"total_bytes + retry_bytes"#
}
