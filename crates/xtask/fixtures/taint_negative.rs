//! Negative fixture for the `nondeterminism-taint` rule: zero findings.
//! `summarize` draws from a BTreeMap — ordered iteration is deterministic
//! and is not a source. `plan_chunks` reads the thread count (a real
//! source) but the tainted value only shapes chunk sizing and never
//! reaches a record, wire, or float sink.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn summarize(losses: &BTreeMap<u32, f32>) -> RoundRecord {
    let first = losses.values().next().copied().unwrap_or(0.0);
    RoundRecord {
        round: 0,
        train_loss: first,
    }
}

pub fn plan_chunks(total: usize) -> usize {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let chunk = total.div_ceil(threads);
    chunk.max(1)
}
