//! Fixture for the `unchecked-arith` rule: exactly one finding, on the bare
//! `+=` over wire-byte totals. The checked, saturating, and float sites
//! below must NOT fire.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn account(upload_bytes: u64, retry_bytes: u64) -> u64 {
    let mut total_bytes = upload_bytes;
    total_bytes += retry_bytes;
    total_bytes
}

fn account_checked(upload_bytes: u64, retry_bytes: u64) -> u64 {
    upload_bytes
        .checked_add(retry_bytes)
        .expect("wire totals stay far below u64::MAX by construction")
}

fn account_saturating(window_ms: u64, grace_ms: u64) -> u64 {
    window_ms.saturating_add(grace_ms)
}

fn sim_clock(sim_time: f64, round_secs: f64) -> f64 {
    // Float sim time is accumulated with float ops on purpose.
    sim_time + round_secs
}

fn unrelated(count: usize, extra: usize) -> usize {
    // No accounting identifier in the operand chains: must NOT fire.
    count + extra
}
