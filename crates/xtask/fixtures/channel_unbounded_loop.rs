//! Fixture for the `channel-discipline` rule (unbounded-growth family):
//! `pump` sends inside a bare `loop` with no drain on the same path — the
//! queue grows without bound. Exactly one finding (line 9).
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn pump(tx: &Sender<Frame>, source: &mut FrameSource) {
    loop {
        let frame = source.next_frame();
        tx.send(frame);
    }
}
