//! Lint fixture: seeds exactly one `serde-default` violation.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Covered field: must NOT fire.
    #[serde(default)]
    pub round: usize,
    /// Uncovered field: the single seeded violation.
    pub wire_total: u64,
}

/// No `Deserialize` derive: never persisted, must NOT fire.
#[derive(Debug, Clone, Serialize)]
pub struct ScratchStats {
    pub hits: usize,
}
