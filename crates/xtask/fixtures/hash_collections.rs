//! Lint fixture: seeds exactly one `hash-collections` violation.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn aggregate(updates: &std::collections::HashMap<usize, f32>) -> f32 {
    // Iteration order of the map is nondeterministic: summing floats in it
    // makes the aggregate run-dependent. (The signature above is the single
    // seeded violation; this HashMap mention is in a comment and a
    // "HashSet" in a string below must not fire either.)
    let _decoy = "HashSet";
    updates.values().sum()
}
