//! Fixture for the `lock-order` rule (guard-across-channel family), with
//! nested guards: the inner guard `q` dies at its block close, but the
//! OUTER guard `state` is still live at the send on line 13 — exactly one
//! finding, naming `state`.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

pub fn flush(outer: &Mutex<FlushState>, inner: &Mutex<FrameQueue>, tx: &Sender<Frame>) {
    let state = outer.lock();
    let batch = {
        let q = inner.lock();
        q.take_batch()
    };
    tx.send(batch);
    state.mark_flushed();
}
