//! Lint fixture: seeds exactly one `truncating-cast` violation.
//! Not compiled — consumed by `crates/xtask/tests/fixtures.rs`.

fn upload_total(scalars: usize) -> u32 {
    let total_bytes = (scalars * 4) as u32;
    total_bytes
}
