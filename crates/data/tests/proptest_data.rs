//! Property-based tests for the dataset substrate.

use fedsu_data::{dirichlet_partition, label_distribution, Batcher, InMemoryDataset, SyntheticConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_is_a_partition(seed in 0u64..1000, classes in 1usize..6, per_class in 2usize..20,
                                clients in 1usize..8, alpha in 0.1f64..10.0) {
        let labels: Vec<usize> = (0..classes * per_class).map(|i| i / per_class).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = dirichlet_partition(&labels, clients, alpha, &mut rng);
        prop_assert_eq!(parts.len(), clients);
        // Exhaustive and disjoint.
        let mut seen = vec![0u8; labels.len()];
        for p in &parts {
            for &i in p {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // No empty client (runtime invariant) as long as there are enough samples.
        if labels.len() >= clients {
            prop_assert!(parts.iter().all(|p| !p.is_empty()));
        }
        // Histogram is consistent with the partition sizes.
        let hist = label_distribution(&labels, &parts, classes);
        for (p, h) in parts.iter().zip(&hist) {
            prop_assert_eq!(p.len(), h.iter().sum::<usize>());
        }
    }

    #[test]
    fn synthetic_dataset_shape_invariants(classes in 1usize..5, c in 1usize..3, h in 2usize..8, w in 2usize..8, n in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(0);
        let d = SyntheticConfig::new(classes, c, h, w).samples_per_class(n).build(&mut rng);
        prop_assert_eq!(d.len(), classes * n);
        prop_assert_eq!(d.sample_shape(), &[c, h, w]);
        for i in 0..d.len() {
            let (f, l) = d.sample(i);
            prop_assert_eq!(f.len(), c * h * w);
            prop_assert!(l < classes);
            prop_assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn batcher_eventually_yields_every_sample(seed in 0u64..1000, n in 2usize..20, batch in 1usize..6) {
        let features: Vec<f32> = (0..n).map(|v| v as f32).collect();
        let labels = vec![0usize; n];
        let d = Arc::new(InMemoryDataset::new(features, labels, &[1], 1));
        let mut b = Batcher::new(d, (0..n).collect(), seed);
        let mut seen = vec![false; n];
        // One epoch's worth of batches covers everything exactly once.
        let mut yielded = 0;
        while yielded < n {
            let (t, _) = b.next_batch(batch);
            for r in 0..t.shape()[0] {
                let v = t.data()[r] as usize;
                prop_assert!(!seen[v], "sample {v} twice in one epoch");
                seen[v] = true;
                yielded += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_train_and_test_are_label_consistent(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = SyntheticConfig::new(3, 1, 4, 4).samples_per_class(5).build_split(4, &mut rng);
        prop_assert_eq!(train.classes(), test.classes());
        prop_assert_eq!(train.sample_shape(), test.sample_shape());
        prop_assert_eq!(test.len(), 12);
    }
}
