//! Mini-batch loader over a client's partition of a shared dataset.

use crate::{Augment, InMemoryDataset};
use fedsu_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Streams shuffled mini-batches from a subset of a shared dataset,
/// reshuffling at each epoch boundary. Every FL client owns one `Batcher`
/// over its Dirichlet partition.
#[derive(Debug, Clone)]
pub struct Batcher {
    dataset: Arc<InMemoryDataset>,
    indices: Vec<usize>,
    pos: usize,
    rng: StdRng,
    augment: Option<Augment>,
}

impl Batcher {
    /// Creates a batcher over `indices` of `dataset`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains an out-of-range index.
    pub fn new(dataset: Arc<InMemoryDataset>, indices: Vec<usize>, seed: u64) -> Self {
        assert!(!indices.is_empty(), "batcher needs at least one sample");
        assert!(indices.iter().all(|&i| i < dataset.len()), "index out of range");
        let mut b = Batcher { dataset, indices, pos: 0, rng: StdRng::seed_from_u64(seed), augment: None };
        b.indices.shuffle(&mut b.rng);
        b
    }

    /// Enables per-sample augmentation (applied at batch time; off by
    /// default, matching the paper's setup). Only meaningful for image
    /// datasets with a `[c, h, w]` sample shape.
    pub fn with_augmentation(mut self, augment: Augment) -> Self {
        self.augment = if augment.is_identity() { None } else { Some(augment) };
        self
    }

    /// Number of samples in this client's partition.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the partition is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Produces the next mini-batch of up to `batch_size` samples, wrapping
    /// (and reshuffling) at the epoch boundary. The batch may be smaller
    /// than `batch_size` at the end of an epoch but is never empty.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn next_batch(&mut self, batch_size: usize) -> (Tensor, Vec<usize>) {
        assert!(batch_size > 0, "batch size must be positive");
        if self.pos >= self.indices.len() {
            self.indices.shuffle(&mut self.rng);
            self.pos = 0;
        }
        let end = (self.pos + batch_size).min(self.indices.len());
        let batch_indices = &self.indices[self.pos..end];
        let (mut tensor, labels) = self.dataset.batch(batch_indices);
        if let Some(aug) = self.augment {
            let shape = self.dataset.sample_shape().to_vec();
            if let [c, h, w] = shape[..] {
                let sample_len = c * h * w;
                let data = tensor.data_mut();
                for i in 0..labels.len() {
                    aug.apply(&mut data[i * sample_len..(i + 1) * sample_len], c, h, w, &mut self.rng);
                }
            }
        }
        self.pos = end;
        (tensor, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Arc<InMemoryDataset> {
        let features: Vec<f32> = (0..20).map(|v| v as f32).collect();
        let labels = (0..10).map(|i| i % 2).collect();
        Arc::new(InMemoryDataset::new(features, labels, &[2], 2))
    }

    #[test]
    fn batches_have_requested_size() {
        let mut b = Batcher::new(dataset(), (0..10).collect(), 0);
        let (t, l) = b.next_batch(4);
        assert_eq!(t.shape(), &[4, 2]);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn epoch_covers_every_sample_exactly_once() {
        let mut b = Batcher::new(dataset(), (0..10).collect(), 1);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let (t, _) = b.next_batch(3);
            for row in 0..t.shape()[0] {
                seen.push(t.row(row).unwrap()[0] as usize / 2);
            }
        }
        // 3+3+3+1 = 10: one full epoch.
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn wraps_after_epoch() {
        let mut b = Batcher::new(dataset(), vec![0, 1], 2);
        b.next_batch(2);
        let (t, _) = b.next_batch(2); // second epoch
        assert_eq!(t.shape()[0], 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b1 = Batcher::new(dataset(), (0..10).collect(), 7);
        let mut b2 = Batcher::new(dataset(), (0..10).collect(), 7);
        let (t1, l1) = b1.next_batch(5);
        let (t2, l2) = b2.next_batch(5);
        assert_eq!(t1.data(), t2.data());
        assert_eq!(l1, l2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut b1 = Batcher::new(dataset(), (0..10).collect(), 7);
        let mut b2 = Batcher::new(dataset(), (0..10).collect(), 8);
        let (t1, _) = b1.next_batch(10);
        let (t2, _) = b2.next_batch(10);
        assert_ne!(t1.data(), t2.data());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_indices_panic() {
        Batcher::new(dataset(), vec![], 0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_index_panics() {
        Batcher::new(dataset(), vec![99], 0);
    }
}


#[cfg(test)]
mod augment_tests {
    use super::*;
    use crate::SyntheticConfig;

    #[test]
    fn augmented_batches_differ_from_plain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let data = Arc::new(SyntheticConfig::new(2, 1, 6, 6).samples_per_class(10).build(&mut rng));
        let plain = Batcher::new(Arc::clone(&data), (0..20).collect(), 5);
        let mut augmented = Batcher::new(Arc::clone(&data), (0..20).collect(), 5)
            .with_augmentation(Augment::light());
        let mut plain = plain;
        let (a, la) = plain.next_batch(20);
        let (b, lb) = augmented.next_batch(20);
        assert_eq!(la, lb, "labels unchanged");
        assert_ne!(a.data(), b.data(), "pixels augmented");
    }

    #[test]
    fn identity_augmentation_is_free() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let data = Arc::new(SyntheticConfig::new(2, 1, 4, 4).samples_per_class(5).build(&mut rng));
        let mut plain = Batcher::new(Arc::clone(&data), (0..10).collect(), 9);
        let mut ident = Batcher::new(Arc::clone(&data), (0..10).collect(), 9)
            .with_augmentation(Augment::default());
        let (a, _) = plain.next_batch(10);
        let (b, _) = ident.next_batch(10);
        assert_eq!(a.data(), b.data());
    }
}
