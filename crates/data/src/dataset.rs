//! In-memory labelled dataset.

use fedsu_tensor::Tensor;

/// A labelled dataset held fully in memory.
///
/// Features are stored as one contiguous row-major buffer; each sample has
/// shape `sample_shape` (e.g. `[1, 28, 28]`). Clients hold an `Arc` to a
/// shared dataset and index into it with their partition's indices.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemoryDataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    sample_shape: Vec<usize>,
    sample_len: usize,
    classes: usize,
}

impl InMemoryDataset {
    /// Creates a dataset from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != labels.len() * prod(sample_shape)` or a
    /// label is `>= classes`.
    pub fn new(features: Vec<f32>, labels: Vec<usize>, sample_shape: &[usize], classes: usize) -> Self {
        let sample_len: usize = sample_shape.iter().product();
        assert_eq!(
            features.len(),
            labels.len() * sample_len,
            "feature buffer size mismatch"
        );
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        InMemoryDataset { features, labels, sample_shape: sample_shape.to_vec(), sample_len, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample tensor shape (without the batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature slice and label of sample `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn sample(&self, idx: usize) -> (&[f32], usize) {
        let start = idx * self.sample_len;
        (&self.features[start..start + self.sample_len], self.labels[idx])
    }

    /// Assembles a batch tensor `[indices.len(), ...sample_shape]` and the
    /// corresponding labels.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(indices.len() * self.sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let (f, l) = self.sample(i);
            data.extend_from_slice(f);
            labels.push(l);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.sample_shape);
        let t = Tensor::from_vec(data, &shape).expect("batch shape consistent by construction");
        (t, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InMemoryDataset {
        // 3 samples of shape [2]: [0,1], [2,3], [4,5]
        InMemoryDataset::new(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], vec![0, 1, 0], &[2], 2)
    }

    #[test]
    fn sample_access() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.classes(), 2);
        let (f, l) = d.sample(1);
        assert_eq!(f, &[2.0, 3.0]);
        assert_eq!(l, 1);
    }

    #[test]
    fn batch_assembles_in_index_order() {
        let d = tiny();
        let (t, labels) = d.batch(&[2, 0]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(labels, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "feature buffer size mismatch")]
    fn wrong_feature_len_panics() {
        InMemoryDataset::new(vec![0.0; 5], vec![0, 1], &[2], 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_out_of_range_panics() {
        InMemoryDataset::new(vec![0.0; 4], vec![0, 5], &[2], 2);
    }

    #[test]
    fn empty_batch_is_valid() {
        let d = tiny();
        let (t, labels) = d.batch(&[]);
        assert_eq!(t.shape(), &[0, 2]);
        assert!(labels.is_empty());
    }
}
