//! # fedsu-data
//!
//! Synthetic federated datasets and the non-IID partitioner used by the
//! FedSU reproduction.
//!
//! The paper evaluates on EMNIST, FMNIST and CIFAR-10. Those corpora are not
//! available offline, so this crate generates *class-prototype* image
//! datasets of identical tensor shape and comparable difficulty profile:
//! each class is a low-dimensional manifold (an interpolation between two
//! random prototypes) plus Gaussian pixel noise, so SGD shows the same
//! converge-then-plateau per-parameter trajectories the paper's mechanism
//! exploits (see DESIGN.md §3 for the substitution argument).
//!
//! Client data skew follows the paper exactly: a Dirichlet(α) allocation of
//! each class across clients (Hsu et al., 2019), with α = 1 as the paper's
//! default "modest non-IID" level.
//!
//! ```
//! use fedsu_data::{SyntheticConfig, dirichlet_partition};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = SyntheticConfig::emnist_like().samples_per_class(20).build(&mut rng);
//! let parts = dirichlet_partition(data.labels(), 4, 1.0, &mut rng);
//! assert_eq!(parts.len(), 4);
//! assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), data.len());
//! ```

#![warn(missing_docs)]

mod augment;
mod dataset;
mod idx;
mod loader;
mod partition;
mod synthetic;

pub use augment::Augment;
pub use dataset::InMemoryDataset;
pub use idx::{read_idx_images, read_idx_labels, IdxError};
pub use loader::Batcher;
pub use partition::{dirichlet_partition, label_distribution};
pub use synthetic::SyntheticConfig;
