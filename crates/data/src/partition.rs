//! Dirichlet non-IID partitioner (Hsu et al., 2019), as used in the paper's
//! training setup (Sec. VI-A, α = 1).

use rand::Rng;
use rand_distr::{Dirichlet, Distribution};

/// Splits sample indices across `n_clients` with per-class Dirichlet(α)
/// proportions.
///
/// For every class, a fresh proportion vector `p ~ Dir(α·1)` is drawn and
/// that class's samples are dealt out accordingly. `α → ∞` approaches IID;
/// small `α` concentrates each class on few clients. Any client left with no
/// samples steals one from the largest partition so every client can train.
///
/// # Panics
///
/// Panics if `n_clients == 0` or `alpha <= 0`.
pub fn dirichlet_partition<R: Rng + ?Sized>(
    labels: &[usize],
    n_clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(alpha > 0.0, "alpha must be positive");
    if n_clients == 1 {
        return vec![(0..labels.len()).collect()];
    }
    let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in labels.iter().enumerate() {
        // `classes` is max(label) + 1, so every label has a bucket.
        if let Some(bucket) = by_class.get_mut(l) {
            bucket.push(i);
        }
    }

    // alpha > 0 and n_clients >= 2 make the distribution valid by
    // construction; a rejected alpha degrades to uniform shares.
    let dir = Dirichlet::new_with_size(alpha, n_clients).ok();
    let uniform = vec![1.0 / n_clients as f64; n_clients];
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for idxs in by_class.iter().filter(|v| !v.is_empty()) {
        let p: Vec<f64> = dir.as_ref().map_or_else(|| uniform.clone(), |d| d.sample(rng));
        // Cumulative shares -> integer boundaries over this class's samples.
        let n = idxs.len();
        let mut cum = 0.0f64;
        let mut start = 0usize;
        for (client, share) in p.iter().enumerate() {
            cum += share;
            let end = if client + 1 == n_clients { n } else { (cum * n as f64).round() as usize };
            let end = end.clamp(start, n);
            // `client < n_clients` and `start <= end <= n` hold by the clamp.
            if let (Some(part), Some(chunk)) = (parts.get_mut(client), idxs.get(start..end)) {
                part.extend_from_slice(chunk);
            }
            start = end;
        }
    }

    // Guarantee non-empty clients (the emulator requires every client to be
    // able to run at least one batch).
    for c in 0..n_clients {
        if parts.get(c).is_some_and(Vec::is_empty) {
            let donor =
                (0..n_clients).max_by_key(|&i| parts.get(i).map_or(0, Vec::len)).unwrap_or(c);
            // A donor with a single sample (or the empty client itself, when
            // everything is empty) donates nothing, exactly as before.
            let moved = parts.get_mut(donor).filter(|d| d.len() > 1).and_then(|d| d.pop());
            if let Some((moved, part)) = moved.zip(parts.get_mut(c)) {
                part.push(moved);
            }
        }
    }
    parts
}

/// Per-client class histogram: `result[client][class]` is the number of
/// samples of `class` held by `client`. Useful for inspecting skew.
pub fn label_distribution(labels: &[usize], parts: &[Vec<usize>], classes: usize) -> Vec<Vec<usize>> {
    let mut hist = vec![vec![0usize; classes]; parts.len()];
    for (c, part) in parts.iter().enumerate() {
        for &i in part {
            hist[c][labels[i]] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labels(classes: usize, per_class: usize) -> Vec<usize> {
        (0..classes * per_class).map(|i| i / per_class).collect()
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = labels(5, 40);
        let parts = dirichlet_partition(&l, 8, 1.0, &mut rng);
        let mut seen = vec![false; l.len()];
        for part in &parts {
            for &i in part {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all samples assigned");
    }

    #[test]
    fn no_client_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = labels(2, 10);
        // Highly concentrated alpha so emptiness would otherwise be likely.
        let parts = dirichlet_partition(&l, 10, 0.05, &mut rng);
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn high_alpha_is_nearly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = labels(4, 250);
        let parts = dirichlet_partition(&l, 4, 1000.0, &mut rng);
        for p in &parts {
            let frac = p.len() as f64 / l.len() as f64;
            assert!((frac - 0.25).abs() < 0.05, "near-IID split, got {frac}");
        }
    }

    #[test]
    fn low_alpha_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = labels(4, 250);
        let parts = dirichlet_partition(&l, 4, 0.05, &mut rng);
        let hist = label_distribution(&l, &parts, 4);
        // At low alpha, some client should be strongly dominated by one class.
        let max_frac = hist
            .iter()
            .filter(|h| h.iter().sum::<usize>() > 0)
            .map(|h| {
                let total: usize = h.iter().sum();
                *h.iter().max().expect("classes > 0") as f64 / total as f64
            })
            .fold(0.0, f64::max);
        assert!(max_frac > 0.6, "expected skew, max class fraction {max_frac}");
    }

    #[test]
    fn single_client_gets_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = labels(3, 5);
        let parts = dirichlet_partition(&l, 1, 1.0, &mut rng);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 15);
    }

    #[test]
    fn label_distribution_counts() {
        let l = vec![0, 0, 1, 1];
        let parts = vec![vec![0, 2], vec![1, 3]];
        let hist = label_distribution(&l, &parts, 2);
        assert_eq!(hist, vec![vec![1, 1], vec![1, 1]]);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        dirichlet_partition(&[0], 0, 1.0, &mut rng);
    }
}
