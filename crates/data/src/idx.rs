//! IDX file format (the MNIST/EMNIST/FMNIST container) reader.
//!
//! The reproduction's experiments run on synthetic data (DESIGN.md §3), but
//! users who *do* have the real `train-images-idx3-ubyte` /
//! `train-labels-idx1-ubyte` files can load them into an
//! [`InMemoryDataset`] here and run every strategy on them unchanged.
//!
//! Format: big-endian; magic `[0, 0, dtype, ndims]`, then `ndims` u32
//! dimension sizes, then the raw data. Only the `u8` dtype (0x08) used by
//! the MNIST family is supported.

use crate::InMemoryDataset;
use std::fmt;
use std::io::Read;

/// Errors while parsing IDX data.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Magic bytes malformed or dtype unsupported.
    BadMagic([u8; 4]),
    /// Dimension count does not match what the caller expects.
    WrongRank {
        /// Rank expected (3 for images, 1 for labels).
        expected: u8,
        /// Rank declared in the file.
        actual: u8,
    },
    /// The data section is shorter than the header declares.
    Truncated,
    /// Image and label files disagree on the sample count.
    CountMismatch {
        /// Number of images.
        images: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label was out of the configured class range.
    BadLabel(u8),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "io error: {e}"),
            IdxError::BadMagic(m) => write!(f, "bad idx magic {m:?}"),
            IdxError::WrongRank { expected, actual } => {
                write!(f, "expected rank-{expected} idx file, got rank {actual}")
            }
            IdxError::Truncated => write!(f, "idx data shorter than header declares"),
            IdxError::CountMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            IdxError::BadLabel(l) => write!(f, "label {l} out of range"),
        }
    }
}

impl std::error::Error for IdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IdxError {
    fn from(e: std::io::Error) -> Self {
        IdxError::Io(e)
    }
}

fn read_header<R: Read>(reader: &mut R, expected_rank: u8) -> Result<Vec<usize>, IdxError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic[0] != 0 || magic[1] != 0 || magic[2] != 0x08 {
        return Err(IdxError::BadMagic(magic));
    }
    let rank = magic[3];
    if rank != expected_rank {
        return Err(IdxError::WrongRank { expected: expected_rank, actual: rank });
    }
    let mut dims = Vec::with_capacity(rank as usize);
    for _ in 0..rank {
        let mut b = [0u8; 4];
        reader.read_exact(&mut b)?;
        let dim = usize::try_from(u32::from_be_bytes(b))
            .expect("u32 dimension fits in usize on all supported targets");
        dims.push(dim);
    }
    Ok(dims)
}

fn read_payload<R: Read>(reader: &mut R, len: usize) -> Result<Vec<u8>, IdxError> {
    let mut data = vec![0u8; len];
    reader.read_exact(&mut data).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            IdxError::Truncated
        } else {
            IdxError::Io(e)
        }
    })?;
    Ok(data)
}

/// Reads a rank-3 IDX image file, returning `(pixels ∈ [0,1], n, h, w)`.
///
/// A `&mut R` can be passed anywhere an `R: Read` is expected.
///
/// # Errors
///
/// Returns [`IdxError`] on malformed headers or short data.
pub fn read_idx_images<R: Read>(mut reader: R) -> Result<(Vec<f32>, usize, usize, usize), IdxError> {
    let dims = read_header(&mut reader, 3)?;
    let (n, h, w) = (dims[0], dims[1], dims[2]);
    let raw = read_payload(&mut reader, n * h * w)?;
    let pixels = raw.iter().map(|&b| f32::from(b) / 255.0).collect();
    Ok((pixels, n, h, w))
}

/// Reads a rank-1 IDX label file.
///
/// # Errors
///
/// Returns [`IdxError`] on malformed headers or short data.
pub fn read_idx_labels<R: Read>(mut reader: R) -> Result<Vec<u8>, IdxError> {
    let dims = read_header(&mut reader, 1)?;
    read_payload(&mut reader, dims[0])
}

impl InMemoryDataset {
    /// Builds a dataset from a pair of IDX readers (images + labels), e.g.
    /// the standard EMNIST/FMNIST distribution files.
    ///
    /// # Errors
    ///
    /// Returns [`IdxError`] on malformed files, sample-count mismatch, or a
    /// label `>= classes`.
    pub fn from_idx<R1: Read, R2: Read>(
        images: R1,
        labels: R2,
        classes: usize,
    ) -> Result<Self, IdxError> {
        let (pixels, n, h, w) = read_idx_images(images)?;
        let raw_labels = read_idx_labels(labels)?;
        if raw_labels.len() != n {
            return Err(IdxError::CountMismatch { images: n, labels: raw_labels.len() });
        }
        if let Some(&bad) = raw_labels.iter().find(|&&l| (l as usize) >= classes) {
            return Err(IdxError::BadLabel(bad));
        }
        let labels = raw_labels.into_iter().map(usize::from).collect();
        Ok(InMemoryDataset::new(pixels, labels, &[1, h, w], classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an in-memory IDX image file.
    fn idx_images(n: usize, h: usize, w: usize, pixel: impl Fn(usize) -> u8) -> Vec<u8> {
        let mut buf = vec![0, 0, 0x08, 3];
        for d in [n, h, w] {
            buf.extend_from_slice(&(d as u32).to_be_bytes());
        }
        buf.extend((0..n * h * w).map(pixel));
        buf
    }

    fn idx_labels(labels: &[u8]) -> Vec<u8> {
        let mut buf = vec![0, 0, 0x08, 1];
        buf.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        buf.extend_from_slice(labels);
        buf
    }

    #[test]
    fn roundtrip_images_and_labels() {
        let img = idx_images(2, 2, 3, |i| (i * 10) as u8);
        let (pixels, n, h, w) = read_idx_images(&img[..]).unwrap();
        assert_eq!((n, h, w), (2, 2, 3));
        assert_eq!(pixels.len(), 12);
        assert!((pixels[1] - 10.0 / 255.0).abs() < 1e-6);

        let lab = idx_labels(&[3, 7]);
        assert_eq!(read_idx_labels(&lab[..]).unwrap(), vec![3, 7]);
    }

    #[test]
    fn dataset_from_idx() {
        let img = idx_images(3, 4, 4, |i| i as u8);
        let lab = idx_labels(&[0, 1, 2]);
        let d = InMemoryDataset::from_idx(&img[..], &lab[..], 3).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.sample_shape(), &[1, 4, 4]);
        assert_eq!(d.sample(2).1, 2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = idx_images(1, 2, 2, |_| 0);
        img[2] = 0x09; // wrong dtype
        assert!(matches!(read_idx_images(&img[..]), Err(IdxError::BadMagic(_))));
    }

    #[test]
    fn wrong_rank_rejected() {
        let lab = idx_labels(&[1]);
        assert!(matches!(
            read_idx_images(&lab[..]),
            Err(IdxError::WrongRank { expected: 3, actual: 1 })
        ));
    }

    #[test]
    fn truncated_data_rejected() {
        let img = idx_images(2, 2, 2, |_| 0);
        assert!(matches!(read_idx_images(&img[..img.len() - 1]), Err(IdxError::Truncated)));
    }

    #[test]
    fn count_mismatch_rejected() {
        let img = idx_images(2, 2, 2, |_| 0);
        let lab = idx_labels(&[0]);
        assert!(matches!(
            InMemoryDataset::from_idx(&img[..], &lab[..], 2),
            Err(IdxError::CountMismatch { images: 2, labels: 1 })
        ));
    }

    #[test]
    fn out_of_range_label_rejected() {
        let img = idx_images(1, 2, 2, |_| 0);
        let lab = idx_labels(&[9]);
        assert!(matches!(InMemoryDataset::from_idx(&img[..], &lab[..], 2), Err(IdxError::BadLabel(9))));
    }
}
