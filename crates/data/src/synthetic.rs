//! Class-prototype synthetic image generator.
//!
//! Each class `c` owns two random prototype images `P_c`, `Q_c`. A sample of
//! class `c` is `t·P_c + (1−t)·Q_c + ε` with `t ~ U(0,1)` and pixelwise
//! Gaussian noise `ε`. The interpolation gives each class a 1-D manifold
//! (so the task is not trivially linearly separable per-pixel) and the noise
//! level controls difficulty; together they reproduce the gradual
//! converge-then-plateau accuracy curves of the paper's real datasets.

use crate::InMemoryDataset;
use rand::Rng;

/// Builder for a synthetic classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    classes: usize,
    channels: usize,
    height: usize,
    width: usize,
    samples_per_class: usize,
    noise_std: f32,
    prototype_scale: f32,
}

impl SyntheticConfig {
    /// Starts a config with explicit geometry.
    pub fn new(classes: usize, channels: usize, height: usize, width: usize) -> Self {
        SyntheticConfig {
            classes,
            channels,
            height,
            width,
            samples_per_class: 100,
            noise_std: 0.6,
            prototype_scale: 1.0,
        }
    }

    /// EMNIST stand-in: 28×28 greyscale, 10 classes (the paper's CNN task).
    pub fn emnist_like() -> Self {
        SyntheticConfig::new(10, 1, 28, 28).noise_std(0.7)
    }

    /// Fashion-MNIST stand-in: 28×28 greyscale, 10 classes (ResNet task).
    pub fn fmnist_like() -> Self {
        SyntheticConfig::new(10, 1, 28, 28).noise_std(0.9)
    }

    /// CIFAR-10 stand-in: 32×32 RGB, 10 classes (DenseNet task).
    pub fn cifar_like() -> Self {
        SyntheticConfig::new(10, 3, 32, 32).noise_std(0.7)
    }

    /// Sets the number of samples generated per class.
    pub fn samples_per_class(mut self, n: usize) -> Self {
        self.samples_per_class = n;
        self
    }

    /// Sets the pixel-noise standard deviation (task difficulty knob).
    pub fn noise_std(mut self, std: f32) -> Self {
        self.noise_std = std;
        self
    }

    /// Sets the prototype magnitude (signal strength).
    pub fn prototype_scale(mut self, scale: f32) -> Self {
        self.prototype_scale = scale;
        self
    }

    /// Number of classes configured.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-sample shape `[channels, height, width]`.
    pub fn sample_shape(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// Generates the dataset. Deterministic given the RNG state.
    ///
    /// # Panics
    ///
    /// Panics if classes or geometry is zero.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> InMemoryDataset {
        let prototypes = self.sample_prototypes(rng);
        self.generate(&prototypes, self.samples_per_class, rng)
    }

    /// Generates a train/test pair that shares class prototypes — the test
    /// set measures generalization on the *same* task, as a held-out split
    /// of a real dataset would.
    ///
    /// # Panics
    ///
    /// Panics if classes or geometry is zero.
    pub fn build_split<R: Rng + ?Sized>(
        &self,
        test_per_class: usize,
        rng: &mut R,
    ) -> (InMemoryDataset, InMemoryDataset) {
        let prototypes = self.sample_prototypes(rng);
        let train = self.generate(&prototypes, self.samples_per_class, rng);
        let test = self.generate(&prototypes, test_per_class, rng);
        (train, test)
    }

    fn sample_prototypes<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f32> {
        assert!(self.classes > 0 && self.channels > 0 && self.height > 0 && self.width > 0);
        let sample_len = self.channels * self.height * self.width;
        (0..2 * self.classes * sample_len)
            .map(|_| gaussian(rng) * self.prototype_scale)
            .collect()
    }

    fn generate<R: Rng + ?Sized>(
        &self,
        prototypes: &[f32],
        per_class: usize,
        rng: &mut R,
    ) -> InMemoryDataset {
        let sample_len = self.channels * self.height * self.width;
        let n = self.classes * per_class;
        let mut features = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for class in 0..self.classes {
            let p = &prototypes[2 * class * sample_len..(2 * class + 1) * sample_len];
            let q = &prototypes[(2 * class + 1) * sample_len..(2 * class + 2) * sample_len];
            for _ in 0..per_class {
                let t: f32 = rng.gen_range(0.0..1.0);
                for i in 0..sample_len {
                    let v = t * p[i] + (1.0 - t) * q[i] + gaussian(rng) * self.noise_std;
                    features.push(v);
                }
                labels.push(class);
            }
        }
        InMemoryDataset::new(features, labels, &self.sample_shape(), self.classes)
    }
}

/// One standard-normal draw via Box–Muller (keeps the dependency surface to
/// `rand`'s uniform sampling).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_expected_size_and_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = SyntheticConfig::emnist_like().samples_per_class(5).build(&mut rng);
        assert_eq!(d.len(), 50);
        assert_eq!(d.sample_shape(), &[1, 28, 28]);
        assert_eq!(d.classes(), 10);
    }

    #[test]
    fn labels_are_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SyntheticConfig::new(4, 1, 4, 4).samples_per_class(7).build(&mut rng);
        let mut counts = [0usize; 4];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, [7, 7, 7, 7]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticConfig::cifar_like().samples_per_class(3).build(&mut StdRng::seed_from_u64(9));
        let b = SyntheticConfig::cifar_like().samples_per_class(3).build(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.sample(0).0, b.sample(0).0);
    }

    #[test]
    fn same_class_samples_are_correlated_more_than_cross_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = SyntheticConfig::new(2, 1, 8, 8).samples_per_class(30).noise_std(0.3).build(&mut rng);
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        // Mean |cosine| within class 0 vs between class 0 and 1.
        let mut within = 0.0f32;
        let mut across = 0.0f32;
        let mut wn = 0;
        let mut an = 0;
        for i in 0..10 {
            for j in 10..20 {
                within += cos(d.sample(i).0, d.sample(j).0);
                wn += 1;
                across += cos(d.sample(i).0, d.sample(30 + j).0).abs();
                an += 1;
            }
        }
        assert!(within / wn as f32 > across / an as f32, "classes should be separable");
    }

    #[test]
    fn noise_std_increases_spread() {
        let clean = SyntheticConfig::new(1, 1, 6, 6)
            .samples_per_class(20)
            .noise_std(0.01)
            .build(&mut StdRng::seed_from_u64(3));
        let noisy = SyntheticConfig::new(1, 1, 6, 6)
            .samples_per_class(20)
            .noise_std(2.0)
            .build(&mut StdRng::seed_from_u64(3));
        let spread = |d: &InMemoryDataset| {
            let (a, _) = d.sample(0);
            let (b, _) = d.sample(1);
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>()
        };
        assert!(spread(&noisy) > spread(&clean));
    }
}

#[cfg(test)]
mod split_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_shares_prototypes() {
        // Same-class samples across the split correlate; a fresh build's do not.
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SyntheticConfig::new(2, 1, 8, 8).samples_per_class(10).noise_std(0.2);
        let (train, test) = cfg.build_split(10, &mut rng);
        let fresh = cfg.build(&mut StdRng::seed_from_u64(999));
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let mut same = 0.0f32;
        let mut other = 0.0f32;
        for i in 0..10 {
            same += cos(train.sample(i).0, test.sample(i).0);
            other += cos(train.sample(i).0, fresh.sample(i).0).abs();
        }
        assert!(same > other, "split must share the task: {same} vs {other}");
    }

    #[test]
    fn split_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = SyntheticConfig::new(3, 1, 4, 4).samples_per_class(7).build_split(2, &mut rng);
        assert_eq!(train.len(), 21);
        assert_eq!(test.len(), 6);
    }
}
