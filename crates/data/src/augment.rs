//! Opt-in image augmentation for client-side training (off by default, as
//! in the paper's setup; useful when running on real IDX datasets).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Augmentation configuration applied per sample at batch time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Augment {
    /// Probability of a horizontal flip.
    pub hflip_prob: f32,
    /// Maximum shift (pixels) for a random translation with zero padding.
    pub max_shift: usize,
}

impl Augment {
    /// Standard light augmentation (flip 50%, shift up to 2 px).
    pub fn light() -> Self {
        Augment { hflip_prob: 0.5, max_shift: 2 }
    }

    /// Whether this config performs any work.
    pub fn is_identity(&self) -> bool {
        self.hflip_prob <= 0.0 && self.max_shift == 0
    }

    /// Applies the augmentation to one `[c, h, w]` sample in place.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != c * h * w`.
    pub fn apply<R: Rng + ?Sized>(&self, sample: &mut [f32], c: usize, h: usize, w: usize, rng: &mut R) {
        assert_eq!(sample.len(), c * h * w, "sample length mismatch");
        if self.hflip_prob > 0.0 && rng.gen::<f32>() < self.hflip_prob {
            hflip(sample, c, h, w);
        }
        if self.max_shift > 0 {
            let dx = rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize);
            let dy = rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize);
            shift(sample, c, h, w, dx, dy);
        }
    }
}

fn hflip(sample: &mut [f32], c: usize, h: usize, w: usize) {
    for ch in 0..c {
        for row in 0..h {
            let base = ch * h * w + row * w;
            sample[base..base + w].reverse();
        }
    }
}

fn shift(sample: &mut [f32], c: usize, h: usize, w: usize, dx: isize, dy: isize) {
    if dx == 0 && dy == 0 {
        return;
    }
    let mut out = vec![0.0f32; sample.len()];
    for ch in 0..c {
        for y in 0..h {
            let sy = y as isize - dy;
            if sy < 0 || sy as usize >= h {
                continue;
            }
            for x in 0..w {
                let sx = x as isize - dx;
                if sx < 0 || sx as usize >= w {
                    continue;
                }
                out[ch * h * w + y * w + x] = sample[ch * h * w + sy as usize * w + sx as usize];
            }
        }
    }
    sample.copy_from_slice(&out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hflip_reverses_rows_per_channel() {
        let mut s = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]; // 2ch 2x2
        hflip(&mut s, 2, 2, 2);
        assert_eq!(s, vec![2.0, 1.0, 4.0, 3.0, 20.0, 10.0, 40.0, 30.0]);
    }

    #[test]
    fn double_flip_is_identity() {
        let orig: Vec<f32> = (0..27).map(|v| v as f32).collect();
        let mut s = orig.clone();
        hflip(&mut s, 3, 3, 3);
        hflip(&mut s, 3, 3, 3);
        assert_eq!(s, orig);
    }

    #[test]
    fn shift_moves_content_and_zero_pads() {
        // 1ch 3x3, shift right by 1.
        let mut s: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        shift(&mut s, 1, 3, 3, 1, 0);
        assert_eq!(s, vec![0.0, 1.0, 2.0, 0.0, 4.0, 5.0, 0.0, 7.0, 8.0]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let orig: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let mut s = orig.clone();
        shift(&mut s, 1, 3, 3, 0, 0);
        assert_eq!(s, orig);
    }

    #[test]
    fn identity_config_does_nothing() {
        let cfg = Augment::default();
        assert!(cfg.is_identity());
        let orig: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut s = orig.clone();
        let mut rng = StdRng::seed_from_u64(0);
        cfg.apply(&mut s, 1, 4, 4, &mut rng);
        assert_eq!(s, orig);
    }

    #[test]
    fn light_config_changes_some_samples() {
        let cfg = Augment::light();
        let mut rng = StdRng::seed_from_u64(1);
        let orig: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut changed = 0;
        for _ in 0..20 {
            let mut s = orig.clone();
            cfg.apply(&mut s, 1, 4, 4, &mut rng);
            if s != orig {
                changed += 1;
            }
        }
        assert!(changed > 5, "augmentation should alter most samples, got {changed}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut s = vec![0.0; 5];
        let mut rng = StdRng::seed_from_u64(0);
        Augment::light().apply(&mut s, 1, 4, 4, &mut rng);
    }
}
