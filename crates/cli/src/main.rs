//! `fedsu` — command-line driver for the FedSU reproduction.
//!
//! ```text
//! fedsu run     --model cnn --strategy fedsu --clients 8 --rounds 60 [--csv out.csv]
//! fedsu compare --model cnn --rounds 60
//! fedsu sweep   --model cnn --param t_s --values 1,10,100
//! fedsu info
//! ```

mod args;

use args::{parse, Command, RunArgs, SweepParam};
use fedsu_metrics::Table;
use fedsu_repro::fl::ExperimentResult;
use fedsu_repro::netsim::FaultConfig;
use fedsu_repro::scenario::{Scenario, StrategyKind};
use std::io::Write;

const USAGE: &str = "\
fedsu — communication-efficient federated learning with speculative updating

USAGE:
  fedsu run     [--model M] [--strategy S] [--clients N] [--rounds R]
                [--alpha A] [--seed K] [--csv PATH] [--kernel-threads N]
                [--fault-dropout P] [--fault-corrupt P] [--fault-seed K]
                [--wire-drop P] [--wire-corrupt P] [--wire-dup P]
                [--wire-reorder P] [--wire-delay P]
  fedsu compare [--model M] [--clients N] [--rounds R] [--alpha A] [--seed K]
  fedsu sweep   --param t_r|t_s --values a,b,c [--model M] [--rounds R] ...
  fedsu info
  fedsu help

MODELS:     cnn, resnet18, densenet, mlp
STRATEGIES: fedavg, cmfl, apf, apf-paper, qsgd, fedsu, fedsu-paper

FAULTS:     --fault-dropout/--fault-corrupt inject per-round client dropout
            and upload corruption with the given probability; a non-zero rate
            auto-enables the server-side defenses (retry, quarantine,
            rollback). --fault-seed picks the deterministic fault plan.
            --wire-drop/--wire-corrupt/--wire-dup/--wire-reorder/--wire-delay
            set the fault plan's per-frame wire knobs, consumed by the chaos
            bus (`examples/chaos_wire.rs` and the transport parity tests);
            the emulated round loop models their cost via the same plan.

THREADS:    --kernel-threads N caps the tensor-kernel thread pool (0 = auto,
            the default; 1 = serial). A pure performance knob: parallel
            kernels are bit-identical to serial ones, and the round loop
            forces kernels serial while clients train on separate threads so
            the two layers never oversubscribe. The FEDSU_KERNEL_THREADS
            environment variable provides the same control.
";

fn scenario_of(a: &RunArgs) -> Scenario {
    let mut scenario = Scenario::new(a.model)
        .clients(a.clients)
        .rounds(a.rounds)
        .alpha(a.alpha)
        .seed(a.seed)
        .kernel_threads(a.kernel_threads);
    let faults = FaultConfig {
        dropout_prob: a.fault_dropout,
        corrupt_prob: a.fault_corrupt,
        wire_drop_prob: a.wire_drop,
        wire_corrupt_prob: a.wire_corrupt,
        wire_duplicate_prob: a.wire_dup,
        wire_reorder_prob: a.wire_reorder,
        wire_delay_prob: a.wire_delay,
        seed: a.fault_seed,
        ..FaultConfig::default()
    };
    if !faults.is_zero() {
        scenario = scenario.faults(faults);
    }
    scenario
}

fn write_csv(path: &str, result: &ExperimentResult) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "round,sim_time_s,accuracy,test_loss,train_loss,sparsification,bytes,participants,\
         dropped,quarantined,retransmitted_bytes,rollbacks"
    )?;
    for r in &result.rounds {
        writeln!(
            f,
            "{},{:.3},{},{},{:.5},{:.5},{},{},{},{},{},{}",
            r.round,
            r.sim_time_secs,
            r.accuracy.map_or(String::new(), |a| format!("{a:.5}")),
            r.test_loss.map_or(String::new(), |l| format!("{l:.5}")),
            r.train_loss,
            r.sparsification_ratio,
            r.bytes,
            r.participants,
            r.dropped,
            r.quarantined,
            r.retransmitted_bytes,
            r.rollbacks
        )?;
    }
    Ok(())
}

fn summary_row(table: &mut Table, result: &ExperimentResult) {
    table.row(&[
        &result.strategy,
        &format!("{:.3}", result.best_accuracy()),
        &format!("{:.1}", result.rounds.last().map_or(0.0, |r| r.sim_time_secs)),
        &format!("{:.1}%", result.mean_sparsification() * 100.0),
        &format!("{:.2}", result.total_bytes() as f64 / 1e6),
    ]);
}

fn run(a: &RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("running {} / {} ({} clients, {} rounds)...", a.model.name(), a.strategy.name(), a.clients, a.rounds);
    let mut experiment = scenario_of(a).build(a.strategy)?;
    let result = experiment.run(None)?;
    let mut table = Table::new(&["Scheme", "Best acc", "Sim time (s)", "Sparsification", "Total MB"]);
    summary_row(&mut table, &result);
    println!("{table}");
    if let Some(path) = &a.csv {
        write_csv(path, &result)?;
        println!("per-round records written to {path}");
    }
    Ok(())
}

fn compare(a: &RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(&["Scheme", "Best acc", "Sim time (s)", "Sparsification", "Total MB"]);
    for strategy in [
        StrategyKind::FedAvg,
        StrategyKind::Cmfl,
        StrategyKind::ApfCalibrated,
        StrategyKind::Qsgd,
        StrategyKind::FedSuCalibrated,
    ] {
        eprintln!("running {}...", strategy.name());
        let mut experiment = scenario_of(a).build(strategy)?;
        let result = experiment.run(None)?;
        summary_row(&mut table, &result);
    }
    println!("{table}");
    Ok(())
}

fn sweep(base: &RunArgs, param: SweepParam, values: &[f64]) -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(&["Value", "Best acc", "Sim time (s)", "Sparsification", "Total MB"]);
    for &v in values {
        let strategy = match param {
            SweepParam::TR => StrategyKind::FedSuWith { t_r: v, t_s: 10.0 },
            SweepParam::TS => StrategyKind::FedSuWith { t_r: 0.1, t_s: v },
        };
        eprintln!("running {param:?}={v}...");
        let mut experiment = scenario_of(base).build(strategy)?;
        let result = experiment.run(None)?;
        table.row(&[
            &format!("{v}"),
            &format!("{:.3}", result.best_accuracy()),
            &format!("{:.1}", result.rounds.last().map_or(0.0, |r| r.sim_time_secs)),
            &format!("{:.1}%", result.mean_sparsification() * 100.0),
            &format!("{:.2}", result.total_bytes() as f64 / 1e6),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn info() {
    println!("models:");
    println!("  cnn       2-conv CNN on a 28x28 EMNIST stand-in (paper lr 0.01)");
    println!("  resnet18  residual network on a 28x28 FMNIST stand-in (paper lr 0.001)");
    println!("  densenet  densely-connected network on a 32x32 CIFAR stand-in (paper lr 0.01)");
    println!("  mlp       small MLP for fast experiments");
    println!();
    println!("strategies:");
    println!("  fedavg        full synchronization");
    println!("  cmfl          relevance-gated client updates (threshold 0.8)");
    println!("  apf           adaptive parameter freezing, laptop-calibrated (0.15)");
    println!("  apf-paper     adaptive parameter freezing, paper threshold (0.05)");
    println!("  qsgd          stochastic 5-bit quantization (extension baseline)");
    println!("  fedsu         speculative updating, laptop-calibrated (T_R 0.1, T_S 10)");
    println!("  fedsu-paper   speculative updating, paper thresholds (T_R 0.01, T_S 1)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = match &command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Info => {
            info();
            Ok(())
        }
        Command::Run(a) => run(a),
        Command::Compare(a) => compare(a),
        Command::Sweep { base, param, values } => sweep(base, *param, values),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
