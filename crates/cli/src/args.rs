//! Hand-rolled argument parsing (keeps the dependency surface to the
//! approved crate set — no clap).

use fedsu_repro::scenario::{ModelKind, StrategyKind};
use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one experiment.
    Run(RunArgs),
    /// Run every strategy on one workload and print a comparison table.
    Compare(RunArgs),
    /// Sweep `T_R` or `T_S` over a value list.
    Sweep {
        /// Shared workload options.
        base: RunArgs,
        /// Which threshold to sweep (`t_r` or `t_s`).
        param: SweepParam,
        /// The values to sweep.
        values: Vec<f64>,
    },
    /// Print available models/strategies.
    Info,
    /// Print usage.
    Help,
}

/// The sweepable FedSU thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Linearity threshold `T_R`.
    TR,
    /// Error-feedback threshold `T_S`.
    TS,
}

/// Workload options shared by the run-like commands.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Architecture/dataset pair.
    pub model: ModelKind,
    /// Strategy (ignored by `compare`/`sweep`).
    pub strategy: StrategyKind,
    /// Number of clients.
    pub clients: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Dirichlet concentration.
    pub alpha: f64,
    /// Master seed.
    pub seed: u64,
    /// Per-round probability that a selected client drops out mid-round.
    pub fault_dropout: f64,
    /// Per-round probability that a surviving client's upload is corrupted.
    pub fault_corrupt: f64,
    /// Seed for the deterministic fault plan (independent of `seed`).
    pub fault_seed: u64,
    /// Per-frame probability that a wire frame is dropped (chaos bus).
    pub wire_drop: f64,
    /// Per-frame probability that a wire frame has bits flipped.
    pub wire_corrupt: f64,
    /// Per-frame probability that a wire frame is duplicated.
    pub wire_dup: f64,
    /// Per-frame probability that a wire frame is delivered one slot late.
    pub wire_reorder: f64,
    /// Per-frame probability that a wire frame is held several slots.
    pub wire_delay: f64,
    /// Kernel-level thread budget for tensor matmuls (`0` = auto-detect).
    pub kernel_threads: usize,
    /// Optional CSV output path for per-round records.
    pub csv: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            model: ModelKind::Cnn,
            strategy: StrategyKind::FedSuCalibrated,
            clients: 8,
            rounds: 40,
            alpha: 1.0,
            seed: 42,
            fault_dropout: 0.0,
            fault_corrupt: 0.0,
            fault_seed: 0xFA17,
            wire_drop: 0.0,
            wire_corrupt: 0.0,
            wire_dup: 0.0,
            wire_reorder: 0.0,
            wire_delay: 0.0,
            kernel_threads: 0,
            csv: None,
        }
    }
}

/// Parse errors, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_model(s: &str) -> Result<ModelKind, ParseError> {
    match s {
        "cnn" => Ok(ModelKind::Cnn),
        "resnet18" | "resnet" => Ok(ModelKind::ResNet18),
        "densenet" => Ok(ModelKind::DenseNet),
        "mlp" => Ok(ModelKind::Mlp),
        other => Err(ParseError(format!("unknown model `{other}` (cnn, resnet18, densenet, mlp)"))),
    }
}

fn parse_strategy(s: &str) -> Result<StrategyKind, ParseError> {
    match s {
        "fedavg" => Ok(StrategyKind::FedAvg),
        "cmfl" => Ok(StrategyKind::Cmfl),
        "apf" => Ok(StrategyKind::ApfCalibrated),
        "apf-paper" => Ok(StrategyKind::Apf),
        "qsgd" => Ok(StrategyKind::Qsgd),
        "fedsu" => Ok(StrategyKind::FedSuCalibrated),
        "fedsu-paper" => Ok(StrategyKind::FedSu),
        other => Err(ParseError(format!(
            "unknown strategy `{other}` (fedavg, cmfl, apf, apf-paper, qsgd, fedsu, fedsu-paper)"
        ))),
    }
}

fn collect_flags(args: Vec<String>) -> Result<BTreeMap<String, String>, ParseError> {
    let mut flags = BTreeMap::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| ParseError(format!("expected a --flag, got `{arg}`")))?
            .to_string();
        let value = args
            .next()
            .ok_or_else(|| ParseError(format!("flag --{key} needs a value")))?;
        flags.insert(key, value);
    }
    Ok(flags)
}

fn parse_prob(value: &str, flag: &str) -> Result<f64, ParseError> {
    let p: f64 =
        value.parse().map_err(|_| ParseError(format!("bad --{flag} `{value}`")))?;
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return Err(ParseError(format!("--{flag} must be a probability in [0, 1], got `{value}`")));
    }
    Ok(p)
}

fn run_args(flags: &BTreeMap<String, String>) -> Result<RunArgs, ParseError> {
    let mut args = RunArgs::default();
    for (key, value) in flags {
        match key.as_str() {
            "model" => args.model = parse_model(value)?,
            "strategy" => args.strategy = parse_strategy(value)?,
            "clients" => {
                args.clients =
                    value.parse().map_err(|_| ParseError(format!("bad --clients `{value}`")))?
            }
            "rounds" => {
                args.rounds =
                    value.parse().map_err(|_| ParseError(format!("bad --rounds `{value}`")))?
            }
            "alpha" => {
                args.alpha =
                    value.parse().map_err(|_| ParseError(format!("bad --alpha `{value}`")))?
            }
            "seed" => {
                args.seed = value.parse().map_err(|_| ParseError(format!("bad --seed `{value}`")))?
            }
            "fault-dropout" => {
                args.fault_dropout = parse_prob(value, "fault-dropout")?;
            }
            "fault-corrupt" => {
                args.fault_corrupt = parse_prob(value, "fault-corrupt")?;
            }
            "fault-seed" => {
                args.fault_seed =
                    value.parse().map_err(|_| ParseError(format!("bad --fault-seed `{value}`")))?
            }
            "wire-drop" => args.wire_drop = parse_prob(value, "wire-drop")?,
            "wire-corrupt" => args.wire_corrupt = parse_prob(value, "wire-corrupt")?,
            "wire-dup" => args.wire_dup = parse_prob(value, "wire-dup")?,
            "wire-reorder" => args.wire_reorder = parse_prob(value, "wire-reorder")?,
            "wire-delay" => args.wire_delay = parse_prob(value, "wire-delay")?,
            "kernel-threads" => {
                args.kernel_threads = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad --kernel-threads `{value}`")))?
            }
            "csv" => args.csv = Some(value.clone()),
            "param" | "values" => {} // handled by sweep
            other => return Err(ParseError(format!("unknown flag --{other}"))),
        }
    }
    Ok(args)
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] with a user-facing message.
pub fn parse(mut args: Vec<String>) -> Result<Command, ParseError> {
    if args.is_empty() {
        return Ok(Command::Help);
    }
    let rest = args.split_off(1);
    let cmd = args.pop().unwrap_or_default();
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info),
        "run" => Ok(Command::Run(run_args(&collect_flags(rest)?)?)),
        "compare" => Ok(Command::Compare(run_args(&collect_flags(rest)?)?)),
        "sweep" => {
            let flags = collect_flags(rest)?;
            let base = run_args(&flags)?;
            let param = match flags.get("param").map(String::as_str) {
                Some("t_r") | Some("tr") => SweepParam::TR,
                Some("t_s") | Some("ts") => SweepParam::TS,
                Some(other) => return Err(ParseError(format!("unknown --param `{other}` (t_r, t_s)"))),
                None => return Err(ParseError("sweep needs --param t_r|t_s".to_string())),
            };
            let values = flags
                .get("values")
                .ok_or_else(|| ParseError("sweep needs --values a,b,c".to_string()))?
                .split(',')
                .map(|v| v.trim().parse::<f64>().map_err(|_| ParseError(format!("bad value `{v}`"))))
                .collect::<Result<Vec<f64>, _>>()?;
            if values.is_empty() {
                return Err(ParseError("sweep needs at least one value".to_string()));
            }
            Ok(Command::Sweep { base, param, values })
        }
        other => Err(ParseError(format!("unknown command `{other}` (run, compare, sweep, info, help)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(Vec::new()).unwrap(), Command::Help);
        assert_eq!(parse(s(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_defaults() {
        let cmd = parse(s(&["run"])).unwrap();
        assert_eq!(cmd, Command::Run(RunArgs::default()));
    }

    #[test]
    fn run_with_flags() {
        let cmd = parse(s(&["run", "--model", "mlp", "--strategy", "apf", "--rounds", "5", "--seed", "9"])).unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.model, ModelKind::Mlp);
                assert_eq!(a.strategy, StrategyKind::ApfCalibrated);
                assert_eq!(a.rounds, 5);
                assert_eq!(a.seed, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_parses_values() {
        let cmd = parse(s(&["sweep", "--model", "mlp", "--param", "t_s", "--values", "1,10,100"])).unwrap();
        match cmd {
            Command::Sweep { param, values, .. } => {
                assert_eq!(param, SweepParam::TS);
                assert_eq!(values, vec![1.0, 10.0, 100.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_flags_parse() {
        let cmd = parse(s(&[
            "run",
            "--fault-dropout",
            "0.15",
            "--fault-corrupt",
            "0.02",
            "--fault-seed",
            "99",
        ]))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert!((a.fault_dropout - 0.15).abs() < 1e-12);
                assert!((a.fault_corrupt - 0.02).abs() < 1e-12);
                assert_eq!(a.fault_seed, 99);
            }
            other => panic!("{other:?}"),
        }
        // Defaults are fault-free.
        let d = RunArgs::default();
        assert_eq!(d.fault_dropout, 0.0);
        assert_eq!(d.fault_corrupt, 0.0);
    }

    #[test]
    fn wire_fault_flags_parse_and_default_to_zero() {
        let cmd = parse(s(&[
            "run",
            "--wire-drop",
            "0.1",
            "--wire-corrupt",
            "0.05",
            "--wire-dup",
            "0.02",
            "--wire-reorder",
            "0.03",
            "--wire-delay",
            "0.04",
        ]))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert!((a.wire_drop - 0.1).abs() < 1e-12);
                assert!((a.wire_corrupt - 0.05).abs() < 1e-12);
                assert!((a.wire_dup - 0.02).abs() < 1e-12);
                assert!((a.wire_reorder - 0.03).abs() < 1e-12);
                assert!((a.wire_delay - 0.04).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        let d = RunArgs::default();
        assert_eq!(
            (d.wire_drop, d.wire_corrupt, d.wire_dup, d.wire_reorder, d.wire_delay),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
        // Wire knobs are probabilities too.
        assert!(parse(s(&["run", "--wire-drop", "2.0"])).unwrap_err().0.contains("probability"));
        assert!(parse(s(&["run", "--wire-delay", "-1"])).unwrap_err().0.contains("probability"));
    }

    #[test]
    fn fault_probabilities_are_range_checked() {
        assert!(parse(s(&["run", "--fault-dropout", "1.5"]))
            .unwrap_err()
            .0
            .contains("probability"));
        assert!(parse(s(&["run", "--fault-corrupt", "-0.1"]))
            .unwrap_err()
            .0
            .contains("probability"));
        assert!(parse(s(&["run", "--fault-dropout", "nan"])).is_err());
    }

    #[test]
    fn kernel_threads_flag_parses() {
        let cmd = parse(s(&["run", "--kernel-threads", "4"])).unwrap();
        match cmd {
            Command::Run(a) => assert_eq!(a.kernel_threads, 4),
            other => panic!("{other:?}"),
        }
        // Default is auto-detect.
        assert_eq!(RunArgs::default().kernel_threads, 0);
        assert!(parse(s(&["run", "--kernel-threads", "lots"]))
            .unwrap_err()
            .0
            .contains("kernel-threads"));
    }

    #[test]
    fn errors_are_friendly() {
        assert!(parse(s(&["frobnicate"])).unwrap_err().0.contains("unknown command"));
        assert!(parse(s(&["run", "--model", "vgg"])).unwrap_err().0.contains("unknown model"));
        assert!(parse(s(&["run", "--rounds"])).unwrap_err().0.contains("needs a value"));
        assert!(parse(s(&["sweep", "--values", "1"])).unwrap_err().0.contains("--param"));
        assert!(parse(s(&["sweep", "--param", "t_r"])).unwrap_err().0.contains("--values"));
        assert!(parse(s(&["run", "--bogus", "1"])).unwrap_err().0.contains("unknown flag"));
    }
}
