//! Normalized difference of consecutive global updates (Wang et al.,
//! adopted by the paper's Sec. III-A, Fig. 2).

/// Streams per-round global parameter vectors and produces the normalized
/// difference series `‖δ_{t+1} − δ_t‖ / ‖δ_t‖`, where `δ_t` is round `t`'s
/// global update vector.
#[derive(Debug, Clone, Default)]
pub struct NormalizedDifference {
    prev_params: Option<Vec<f32>>,
    prev_update: Option<Vec<f32>>,
    values: Vec<f64>,
}

impl NormalizedDifference {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a (post-aggregation) global parameter vector; values start
    /// appearing from the third observation.
    ///
    /// # Panics
    ///
    /// Panics if the vector length changes between observations.
    pub fn observe(&mut self, params: &[f32]) {
        if let Some(prev) = &self.prev_params {
            assert_eq!(prev.len(), params.len(), "parameter count changed");
            let update: Vec<f32> = params.iter().zip(prev).map(|(a, b)| a - b).collect();
            if let Some(prev_update) = &self.prev_update {
                let mut diff_sq = 0.0f64;
                let mut base_sq = 0.0f64;
                for (u, pu) in update.iter().zip(prev_update) {
                    diff_sq += f64::from(u - pu) * f64::from(u - pu);
                    base_sq += f64::from(*pu) * f64::from(*pu);
                }
                if base_sq > 0.0 {
                    self.values.push((diff_sq / base_sq).sqrt());
                }
            }
            self.prev_update = Some(update);
        }
        self.prev_params = Some(params.to_vec());
    }

    /// The normalized-difference series observed so far.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fraction of observations below `threshold` (the paper reports the
    /// fraction below 0.05 / 0.005).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v < threshold).count() as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_updates_have_zero_difference() {
        let mut nd = NormalizedDifference::new();
        // x_t = -0.1 t: updates are identical every round.
        for t in 0..10 {
            nd.observe(&[-0.1 * t as f32, 1.0 - 0.05 * t as f32]);
        }
        assert_eq!(nd.values().len(), 8);
        for &v in nd.values() {
            assert!(v < 1e-5, "value {v}");
        }
        assert_eq!(nd.fraction_below(0.05), 1.0);
    }

    #[test]
    fn changing_updates_have_positive_difference() {
        let mut nd = NormalizedDifference::new();
        // Quadratic trajectory: update grows each round.
        for t in 0..10 {
            let t = t as f32;
            nd.observe(&[t * t * 0.1]);
        }
        assert!(nd.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn needs_three_observations() {
        let mut nd = NormalizedDifference::new();
        nd.observe(&[0.0]);
        nd.observe(&[1.0]);
        assert!(nd.values().is_empty());
        nd.observe(&[2.0]);
        assert_eq!(nd.values().len(), 1);
    }

    #[test]
    fn zero_base_update_is_skipped() {
        let mut nd = NormalizedDifference::new();
        nd.observe(&[1.0]);
        nd.observe(&[1.0]); // zero update
        nd.observe(&[2.0]);
        assert!(nd.values().is_empty(), "division by zero norm must be skipped");
    }

    #[test]
    fn fraction_below_on_empty_is_zero() {
        assert_eq!(NormalizedDifference::new().fraction_below(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn size_change_panics() {
        let mut nd = NormalizedDifference::new();
        nd.observe(&[0.0]);
        nd.observe(&[0.0, 1.0]);
    }
}
