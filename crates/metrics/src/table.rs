//! Fixed-width text tables for the benchmark harness output.

use std::fmt;

/// A simple fixed-width table builder.
///
/// ```
/// use fedsu_metrics::Table;
/// let mut t = Table::new(&["Model", "Scheme", "Total Time (h)"]);
/// t.row(&["CNN", "FedSU", "0.53"]);
/// let text = t.to_string();
/// assert!(text.contains("FedSU"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells are blank, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["A", "Longer"]);
        t.row(&["hello", "x"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "rows align");
        assert!(lines[1].chars().all(|c| c == '-' || c == '|'));
    }

    #[test]
    fn short_and_long_rows_are_normalized() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains('3'), "extra cells dropped");
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = Table::new(&["X"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
