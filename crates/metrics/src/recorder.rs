//! Per-round recorder for selected scalar parameters (Figs. 1 and 6).

use serde::{Deserialize, Serialize};

/// Records the values of a fixed set of scalar parameters after every round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryRecorder {
    indices: Vec<usize>,
    /// `trajectories[k]` holds the per-round values of `indices[k]`.
    trajectories: Vec<Vec<f32>>,
}

impl TrajectoryRecorder {
    /// Creates a recorder for the given scalar indices.
    pub fn new(indices: &[usize]) -> Self {
        TrajectoryRecorder {
            indices: indices.to_vec(),
            trajectories: vec![Vec::new(); indices.len()],
        }
    }

    /// The tracked indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Appends this round's values from the global parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if any tracked index is out of range.
    pub fn observe(&mut self, params: &[f32]) {
        for (k, &idx) in self.indices.iter().enumerate() {
            self.trajectories[k].push(params[idx]);
        }
    }

    /// Number of rounds observed.
    pub fn rounds(&self) -> usize {
        self.trajectories.first().map_or(0, Vec::len)
    }

    /// The trajectory of the `k`-th tracked parameter.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn trajectory(&self, k: usize) -> &[f32] {
        &self.trajectories[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_selected_indices_per_round() {
        let mut r = TrajectoryRecorder::new(&[0, 2]);
        r.observe(&[1.0, 9.0, 3.0]);
        r.observe(&[1.5, 9.0, 3.5]);
        assert_eq!(r.rounds(), 2);
        assert_eq!(r.trajectory(0), &[1.0, 1.5]);
        assert_eq!(r.trajectory(1), &[3.0, 3.5]);
        assert_eq!(r.indices(), &[0, 2]);
    }

    #[test]
    fn empty_recorder_has_zero_rounds() {
        let r = TrajectoryRecorder::new(&[]);
        assert_eq!(r.rounds(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let mut r = TrajectoryRecorder::new(&[5]);
        r.observe(&[0.0]);
    }
}
