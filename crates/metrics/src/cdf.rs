//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (`0 <= p <= 1`), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics on an empty CDF or `p` outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty cdf");
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// `n` evenly-spaced `(value, cumulative_fraction)` points for printing
    /// a CDF curve.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "need at least one point");
        if self.sorted.is_empty() {
            return Vec::new();
        }
        (1..=n)
            .map(|i| {
                let p = i as f64 / n as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_below_counts_inclusive() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_below(2.0), 0.5);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let cdf = Cdf::from_samples([3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.quantile(0.25), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
    }

    #[test]
    fn nans_are_dropped() {
        let cdf = Cdf::from_samples([f64::NAN, 1.0, f64::NAN]);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn points_cover_the_distribution() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from));
        let pts = cdf.points(4);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3], (100.0, 1.0));
        assert!(pts[0].0 <= pts[1].0 && pts[1].0 <= pts[2].0);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples([]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert!(cdf.points(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty cdf")]
    fn quantile_of_empty_panics() {
        Cdf::from_samples([]).quantile(0.5);
    }
}
