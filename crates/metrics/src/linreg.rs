//! Least-squares line fitting — the *expensive* linearity test FedSU
//! avoids at runtime, used here to validate the cheap oscillation-ratio
//! diagnosis and to annotate trajectory figures.

use serde::{Deserialize, Serialize};

/// Result of fitting `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfectly linear).
    pub r_squared: f64,
}

/// Fits a line to `values` against their indices `0..n`.
///
/// Returns `None` for fewer than 2 points. A constant series fits
/// perfectly (`slope = 0`, `r_squared = 1`).
pub fn linear_fit(values: &[f32]) -> Option<LinearFit> {
    let n = values.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = values.iter().map(|&v| f64::from(v)).sum::<f64>() / nf;
    let mut sxx = 0.0f64;
    let mut sxy = 0.0f64;
    let mut syy = 0.0f64;
    for (i, &y) in values.iter().enumerate() {
        let dx = i as f64 - mean_x;
        let dy = f64::from(y) - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LinearFit { slope, intercept, r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_fits_exactly() {
        let values: Vec<f32> = (0..10).map(|i| 2.0 * i as f32 + 1.0).collect();
        let fit = linear_fit(&values).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 1.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_series_is_linear() {
        let fit = linear_fit(&[3.0; 5]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn quadratic_has_lower_r_squared_than_line() {
        let quad: Vec<f32> = (0..20).map(|i| (i * i) as f32).collect();
        let line: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let fq = linear_fit(&quad).unwrap();
        let fl = linear_fit(&line).unwrap();
        assert!(fq.r_squared < fl.r_squared);
        assert!(fq.r_squared < 0.99);
    }

    #[test]
    fn too_few_points_returns_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[1.0]).is_none());
    }

    #[test]
    fn noisy_line_still_high_r_squared() {
        let values: Vec<f32> = (0..50)
            .map(|i| -0.01 * i as f32 + 0.0005 * ((i as f32 * 3.7).sin()))
            .collect();
        let fit = linear_fit(&values).unwrap();
        assert!(fit.r_squared > 0.98, "r² {}", fit.r_squared);
    }
}
