//! # fedsu-metrics
//!
//! Measurement machinery behind the paper's figures:
//!
//! * [`NormalizedDifference`] — Wang et al.'s update-similarity metric
//!   `‖δ_{t+1} − δ_t‖ / ‖δ_t‖` over per-round global updates (Fig. 2);
//! * [`Cdf`] — empirical cumulative distribution functions (Figs. 2b, 7);
//! * [`TrajectoryRecorder`] — per-round values of selected scalar
//!   parameters (Figs. 1, 6);
//! * [`linear_fit`] — least-squares line fit with R² (used to *quantify*
//!   trajectory linearity instead of eyeballing it);
//! * [`Table`] — fixed-width text tables for the bench harness output.

#![warn(missing_docs)]

mod cdf;
mod linreg;
mod normdiff;
mod plot;
mod recorder;
mod table;

pub use cdf::Cdf;
pub use plot::{sparkline, AsciiPlot};
pub use linreg::{linear_fit, LinearFit};
pub use normdiff::NormalizedDifference;
pub use recorder::TrajectoryRecorder;
pub use table::Table;
