//! Terminal line plots, so the bench harness can render figure-shaped
//! output (time-to-accuracy curves, CDFs) rather than only number columns.

use std::fmt::Write as _;

/// A multi-series ASCII line chart on a fixed character grid.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
    x_label: String,
    y_label: String,
}

impl AsciiPlot {
    /// Creates an empty plot grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "plot grid too small");
        AsciiPlot { width, height, series: Vec::new(), x_label: String::new(), y_label: String::new() }
    }

    /// Sets the axis labels.
    pub fn labels(mut self, x: &str, y: &str) -> Self {
        self.x_label = x.to_string();
        self.y_label = y.to_string();
        self
    }

    /// Adds a series drawn with the given marker character.
    pub fn series(&mut self, marker: char, points: &[(f64, f64)]) -> &mut Self {
        self.series.push((marker, points.to_vec()));
        self
    }

    /// Renders the chart. Returns an empty string when no finite points
    /// exist.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return String::new();
        }
        let (mut x_min, mut x_max, mut y_min, mut y_max) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for (x, y) in &pts {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, points) in &self.series {
            for (x, y) in points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                grid[self.height - 1 - cy][cx] = *marker;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{} (min {y_min:.3}, max {y_max:.3})", self.y_label);
        for row in &grid {
            let _ = writeln!(out, "|{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "+{}", "-".repeat(self.width));
        let _ = writeln!(out, " {} (min {x_min:.1}, max {x_max:.1})", self.x_label);
        let legend: Vec<String> =
            self.series.iter().enumerate().map(|(i, (m, _))| format!("{m}=series{i}")).collect();
        if self.series.len() > 1 {
            let _ = writeln!(out, " legend: {}", legend.join("  "));
        }
        out
    }
}

/// One-line sparkline of a value series using eighth-block characters.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let min = finite.iter().copied().fold(f64::MAX, f64::min);
    let max = finite.iter().copied().fold(f64::MIN, f64::max);
    let span = if (max - min).abs() < f64::EPSILON { 1.0 } else { max - min };
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return ' ';
            }
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_grid_size() {
        let mut p = AsciiPlot::new(20, 5).labels("round", "acc");
        p.series('*', &[(0.0, 0.0), (10.0, 1.0)]);
        let out = p.render();
        let lines: Vec<&str> = out.lines().collect();
        // y label + 5 rows + axis + x label.
        assert_eq!(lines.len(), 8);
        assert!(out.contains('*'));
    }

    #[test]
    fn monotone_series_touches_both_corners() {
        let mut p = AsciiPlot::new(10, 4);
        p.series('*', &[(0.0, 0.0), (1.0, 1.0)]);
        let out = p.render();
        let rows: Vec<&str> = out.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows[0].chars().nth(10), Some('*'), "top-right");
        assert_eq!(rows[3].chars().nth(1), Some('*'), "bottom-left");
    }

    #[test]
    fn empty_and_nan_series_render_empty() {
        let p = AsciiPlot::new(10, 4);
        assert!(p.render().is_empty());
        let mut p2 = AsciiPlot::new(10, 4);
        p2.series('*', &[(f64::NAN, 1.0)]);
        assert!(p2.render().is_empty());
    }

    #[test]
    fn constant_series_is_safe() {
        let mut p = AsciiPlot::new(10, 4);
        p.series('o', &[(0.0, 0.5), (1.0, 0.5)]);
        assert!(p.render().contains('o'));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_panics() {
        AsciiPlot::new(1, 1);
    }
}
