//! QSGD-style stochastic gradient quantization (Alistarh et al., 2017) —
//! the *quantization* family of communication compression the paper's
//! Sec. II-B contrasts sparsification against. Included as an extra
//! baseline beyond the paper's three comparison schemes.
//!
//! Each client quantizes its round update `u = local − global` to
//! `s` levels: `Q(u_i) = ‖u‖₂ · sign(u_i) · ξ_i`, where `ξ_i ∈ {0, 1/s, …,
//! 1}` is a stochastic rounding of `|u_i|/‖u‖₂` (unbiased). The wire cost
//! per scalar is `log2(s+1) + 1` bits plus one norm per client — the
//! compression ceiling the paper calls "relatively limited".

use fedsu_fl::{AggregateOutcome, SyncStrategy};
use fedsu_tensor::simd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Largest `levels` value whose codes fit the 7 magnitude bits of the wire
/// format (sign bit + level byte; see [`Qsgd::quantize_to_codes`]).
pub const MAX_WIRE_LEVELS: u32 = 126;

/// QSGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QsgdConfig {
    /// Number of quantization levels `s` (e.g. 15 for 4-bit magnitudes).
    pub levels: u32,
    /// RNG seed for the stochastic rounding (shared; deterministic runs).
    pub seed: u64,
}

impl Default for QsgdConfig {
    fn default() -> Self {
        QsgdConfig { levels: 15, seed: 0x45_6D }
    }
}

/// The QSGD strategy.
#[derive(Debug, Clone)]
pub struct Qsgd {
    config: QsgdConfig,
    rng: StdRng,
    /// Per-scalar wire cost in bits (sign + magnitude level).
    bits_per_scalar: f64,
    /// Round scratch: one client's raw update (reused across rounds).
    update_scratch: Vec<f32>,
    /// Round scratch: one client's quantized update (reused across rounds).
    q_scratch: Vec<f32>,
    /// Round scratch: the averaged quantized update (reused across rounds).
    mean_scratch: Vec<f32>,
}

impl Qsgd {
    /// Creates QSGD with the given config.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(config: QsgdConfig) -> Self {
        assert!(config.levels > 0, "need at least one level");
        let bits = ((config.levels + 1) as f64).log2().ceil() + 1.0;
        Qsgd {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            bits_per_scalar: bits,
            update_scratch: Vec::new(),
            q_scratch: Vec::new(),
            mean_scratch: Vec::new(),
        }
    }

    /// Quantizes one update vector (unbiased stochastic rounding) into
    /// `out`, reusing its allocation.
    fn quantize_into(&mut self, update: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(update.len(), 0.0);
        let norm = update.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt() as f32;
        if norm <= f32::EPSILON {
            return;
        }
        let s = self.config.levels as f32;
        for (o, &v) in out.iter_mut().zip(update) {
            let scaled = v.abs() / norm * s;
            let floor = scaled.floor();
            let level = if self.rng.gen::<f32>() < scaled - floor { floor + 1.0 } else { floor };
            *o = norm * v.signum() * level / s;
        }
    }

    /// Quantizes one update vector to wire codes: one byte per scalar
    /// (bit 7 = sign, bits 0–6 = magnitude level) plus the returned scale
    /// (the update's ℓ₂ norm; `0.0` for an all-zero update). Consumes the
    /// same stochastic-rounding draws as [`quantize_into`] would, so with
    /// equal RNG state, [`dequantize_codes_into`] reproduces its emulated
    /// values bit-for-bit.
    ///
    /// Returns `None` — without consuming any RNG draws — when the update is
    /// not wire-packable: non-finite values, a non-finite norm, or more than
    /// [`MAX_WIRE_LEVELS`] levels. Callers fall back to a dense frame.
    pub fn quantize_to_codes(&mut self, update: &[f32], codes: &mut Vec<u8>) -> Option<f32> {
        if self.config.levels > MAX_WIRE_LEVELS || update.iter().any(|v| !v.is_finite()) {
            return None;
        }
        codes.clear();
        let norm = update.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt() as f32;
        if norm <= f32::EPSILON {
            codes.resize(update.len(), 0);
            return Some(0.0);
        }
        if !norm.is_finite() {
            return None;
        }
        let s = self.config.levels as f32;
        codes.reserve(update.len());
        for &v in update {
            let scaled = v.abs() / norm * s;
            let floor = scaled.floor();
            let level = if self.rng.gen::<f32>() < scaled - floor { floor + 1.0 } else { floor };
            // level <= s + 1 <= 127 (rounding can land one past `s`), so the
            // cast always fits the 7 magnitude bits.
            let sign = if v.is_sign_negative() { 0x80u8 } else { 0 };
            codes.push(sign | (level as u8));
        }
        Some(norm)
    }

    /// Reconstructs dequantized values from wire codes, bit-for-bit equal to
    /// the emulated [`quantize_into`] output for the same RNG draws: the
    /// per-scalar expression is the identical `((scale · sign) · level) / s`
    /// chain (`scale = 0` encodes the all-zero update).
    pub fn dequantize_codes_into(levels: u32, scale: f32, codes: &[u8], out: &mut Vec<f32>) {
        let s = levels.max(1) as f32;
        out.clear();
        out.reserve(codes.len());
        out.extend(codes.iter().map(|&c| {
            let sign = if c & 0x80 != 0 { -1.0f32 } else { 1.0 };
            let level = f32::from(c & 0x7f);
            ((scale * sign) * level) / s
        }));
    }

    /// Quantizes one update vector, allocating a fresh output.
    #[cfg(test)]
    fn quantize(&mut self, update: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.quantize_into(update, &mut out);
        out
    }

    /// Wire bits per quantized scalar.
    pub fn bits_per_scalar(&self) -> f64 {
        self.bits_per_scalar
    }
}

impl Default for Qsgd {
    fn default() -> Self {
        Qsgd::new(QsgdConfig::default())
    }
}

impl SyncStrategy for Qsgd {
    fn name(&self) -> &str {
        "qsgd"
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        // Express the compressed payload in f32-scalar equivalents so the
        // byte accounting stays uniform across strategies.
        let equivalent =
            ((global.len() as f64 * self.bits_per_scalar / 32.0).ceil() as u64).max(1) + 1; // + the norm
        out.clear();
        out.resize(locals.len(), equivalent);
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        let inv = 1.0 / selected.len().max(1) as f32;
        let mut mean_q = std::mem::take(&mut self.mean_scratch);
        mean_q.clear();
        mean_q.resize(global.len(), 0.0);
        let mut update = std::mem::take(&mut self.update_scratch);
        update.reserve(global.len());
        let mut q = std::mem::take(&mut self.q_scratch);
        let level = simd::simd_level();
        for &c in selected {
            update.clear();
            let Some(local) = locals.get(c) else {
                continue;
            };
            update.extend(local.iter().zip(global.iter()).map(|(l, g)| l - g));
            self.quantize_into(&update, &mut q);
            simd::axpy_with(level, &mut mean_q, inv, &q);
        }
        simd::add_assign_with(level, global, &mean_q);
        self.mean_scratch = mean_q;
        self.update_scratch = update;
        self.q_scratch = q;
        let equivalent = (global.len() as f64 * self.bits_per_scalar / 32.0).ceil() as usize;
        AggregateOutcome {
            broadcast_scalars: equivalent,
            synced_scalars: equivalent,
            total_scalars: global.len(),
        }
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<StdRng>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_unbiased_in_expectation() {
        let mut q = Qsgd::new(QsgdConfig { levels: 4, seed: 1 });
        let update = vec![0.3f32, -0.7, 0.05, 0.0];
        let trials = 4000;
        let mut mean = vec![0.0f64; update.len()];
        for _ in 0..trials {
            let quantized = q.quantize(&update);
            for (m, v) in mean.iter_mut().zip(&quantized) {
                *m += f64::from(*v) / trials as f64;
            }
        }
        for (m, v) in mean.iter().zip(&update) {
            assert!((m - f64::from(*v)).abs() < 0.02, "{m} vs {v}");
        }
    }

    #[test]
    fn zero_update_quantizes_to_zero() {
        let mut q = Qsgd::default();
        assert_eq!(q.quantize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn quantized_values_are_on_the_grid() {
        let mut q = Qsgd::new(QsgdConfig { levels: 4, seed: 2 });
        let update = vec![0.5f32, -0.25, 0.1];
        let norm = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        for v in q.quantize(&update) {
            let level = (v.abs() / norm * 4.0).round();
            assert!((v.abs() / norm * 4.0 - level).abs() < 1e-5, "off-grid value {v}");
        }
    }

    #[test]
    fn upload_volume_reflects_bit_width() {
        // 15 levels -> 4 magnitude bits + 1 sign = 5 bits/scalar.
        let mut q = Qsgd::default();
        assert_eq!(q.bits_per_scalar(), 5.0);
        let locals = vec![vec![0.0; 320]];
        let up = q.prepare_uploads(0, &locals, &vec![0.0; 320]);
        // 320 * 5 / 32 = 50 scalar-equivalents, + 1 for the norm.
        assert_eq!(up, vec![51]);
    }

    #[test]
    fn aggregate_moves_global_toward_locals() {
        let mut q = Qsgd::default();
        let mut global = vec![0.0f32; 8];
        let locals = vec![vec![1.0f32; 8], vec![1.0f32; 8]];
        q.aggregate(0, &locals, &[0, 1], &[true, true], &mut global);
        // Quantization noise allowed, but the direction must be right.
        assert!(global.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn sparsification_ratio_matches_compression() {
        let mut q = Qsgd::default();
        let mut global = vec![0.0f32; 32];
        let locals = vec![vec![0.5f32; 32]];
        let out = q.aggregate(0, &locals, &[0], &[true], &mut global);
        // 5/32 of full volume -> ratio ~ 1 - 5/32.
        let ratio = 1.0 - out.synced_scalars as f64 / out.total_scalars as f64;
        assert!((ratio - (1.0 - 5.0 / 32.0)).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        Qsgd::new(QsgdConfig { levels: 0, seed: 0 });
    }

    #[test]
    fn wire_codes_dequantize_bit_identically_to_emulated_values() {
        // Same seed, same update: the emulated f32 path and the wire-code
        // path must produce bit-identical scalars.
        let cfg = QsgdConfig { levels: 15, seed: 77 };
        let update: Vec<f32> =
            (0..257).map(|i| ((i as f32 * 0.61).sin() - 0.5) * (i % 7) as f32).collect();
        let emulated = Qsgd::new(cfg).quantize(&update);
        let mut codes = Vec::new();
        let scale = Qsgd::new(cfg).quantize_to_codes(&update, &mut codes).unwrap();
        let mut wire = Vec::new();
        Qsgd::dequantize_codes_into(cfg.levels, scale, &codes, &mut wire);
        assert_eq!(emulated.len(), wire.len());
        for (i, (a, b)) in emulated.iter().zip(&wire).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_update_packs_to_zero_scale_and_codes() {
        let mut q = Qsgd::default();
        let mut codes = Vec::new();
        let scale = q.quantize_to_codes(&[0.0, 0.0, 0.0], &mut codes).unwrap();
        assert_eq!(scale, 0.0);
        assert_eq!(codes, vec![0, 0, 0]);
        let mut out = Vec::new();
        Qsgd::dequantize_codes_into(15, scale, &codes, &mut out);
        assert!(out.iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn unpackable_updates_are_refused() {
        let mut q = Qsgd::default();
        let mut codes = Vec::new();
        assert!(q.quantize_to_codes(&[1.0, f32::NAN], &mut codes).is_none());
        assert!(q.quantize_to_codes(&[f32::INFINITY], &mut codes).is_none());
        let mut wide = Qsgd::new(QsgdConfig { levels: MAX_WIRE_LEVELS + 1, seed: 0 });
        assert!(wide.quantize_to_codes(&[1.0, 2.0], &mut codes).is_none());
        // Refusal consumed no RNG draws: the next quantize matches a fresh
        // instance with the same seed.
        let a = q.quantize(&[0.5, -0.5, 0.25]);
        let b = Qsgd::default().quantize(&[0.5, -0.5, 0.25]);
        assert_eq!(a, b);
    }
}
