//! QSGD-style stochastic gradient quantization (Alistarh et al., 2017) —
//! the *quantization* family of communication compression the paper's
//! Sec. II-B contrasts sparsification against. Included as an extra
//! baseline beyond the paper's three comparison schemes.
//!
//! Each client quantizes its round update `u = local − global` to
//! `s` levels: `Q(u_i) = ‖u‖₂ · sign(u_i) · ξ_i`, where `ξ_i ∈ {0, 1/s, …,
//! 1}` is a stochastic rounding of `|u_i|/‖u‖₂` (unbiased). The wire cost
//! per scalar is `log2(s+1) + 1` bits plus one norm per client — the
//! compression ceiling the paper calls "relatively limited".

use fedsu_fl::{AggregateOutcome, SyncStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// QSGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QsgdConfig {
    /// Number of quantization levels `s` (e.g. 15 for 4-bit magnitudes).
    pub levels: u32,
    /// RNG seed for the stochastic rounding (shared; deterministic runs).
    pub seed: u64,
}

impl Default for QsgdConfig {
    fn default() -> Self {
        QsgdConfig { levels: 15, seed: 0x45_6D }
    }
}

/// The QSGD strategy.
#[derive(Debug, Clone)]
pub struct Qsgd {
    config: QsgdConfig,
    rng: StdRng,
    /// Per-scalar wire cost in bits (sign + magnitude level).
    bits_per_scalar: f64,
    /// Round scratch: one client's raw update (reused across rounds).
    update_scratch: Vec<f32>,
    /// Round scratch: one client's quantized update (reused across rounds).
    q_scratch: Vec<f32>,
    /// Round scratch: the averaged quantized update (reused across rounds).
    mean_scratch: Vec<f32>,
}

impl Qsgd {
    /// Creates QSGD with the given config.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(config: QsgdConfig) -> Self {
        assert!(config.levels > 0, "need at least one level");
        let bits = ((config.levels + 1) as f64).log2().ceil() + 1.0;
        Qsgd {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            bits_per_scalar: bits,
            update_scratch: Vec::new(),
            q_scratch: Vec::new(),
            mean_scratch: Vec::new(),
        }
    }

    /// Quantizes one update vector (unbiased stochastic rounding) into
    /// `out`, reusing its allocation.
    fn quantize_into(&mut self, update: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(update.len(), 0.0);
        let norm = update.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt() as f32;
        if norm <= f32::EPSILON {
            return;
        }
        let s = self.config.levels as f32;
        for (o, &v) in out.iter_mut().zip(update) {
            let scaled = v.abs() / norm * s;
            let floor = scaled.floor();
            let level = if self.rng.gen::<f32>() < scaled - floor { floor + 1.0 } else { floor };
            *o = norm * v.signum() * level / s;
        }
    }

    /// Quantizes one update vector, allocating a fresh output.
    #[cfg(test)]
    fn quantize(&mut self, update: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.quantize_into(update, &mut out);
        out
    }

    /// Wire bits per quantized scalar.
    pub fn bits_per_scalar(&self) -> f64 {
        self.bits_per_scalar
    }
}

impl Default for Qsgd {
    fn default() -> Self {
        Qsgd::new(QsgdConfig::default())
    }
}

impl SyncStrategy for Qsgd {
    fn name(&self) -> &str {
        "qsgd"
    }

    fn prepare_uploads(&mut self, _round: usize, locals: &[Vec<f32>], global: &[f32]) -> Vec<u64> {
        // Express the compressed payload in f32-scalar equivalents so the
        // byte accounting stays uniform across strategies.
        let equivalent =
            ((global.len() as f64 * self.bits_per_scalar / 32.0).ceil() as u64).max(1) + 1; // + the norm
        vec![equivalent; locals.len()]
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        let inv = 1.0 / selected.len().max(1) as f32;
        let mut mean_q = std::mem::take(&mut self.mean_scratch);
        mean_q.clear();
        mean_q.resize(global.len(), 0.0);
        let mut update = std::mem::take(&mut self.update_scratch);
        update.reserve(global.len());
        let mut q = std::mem::take(&mut self.q_scratch);
        for &c in selected {
            update.clear();
            update.extend(locals[c].iter().zip(global.iter()).map(|(l, g)| l - g));
            self.quantize_into(&update, &mut q);
            for (m, v) in mean_q.iter_mut().zip(&q) {
                *m += v * inv;
            }
        }
        for (g, q) in global.iter_mut().zip(&mean_q) {
            *g += q;
        }
        self.mean_scratch = mean_q;
        self.update_scratch = update;
        self.q_scratch = q;
        let equivalent = (global.len() as f64 * self.bits_per_scalar / 32.0).ceil() as usize;
        AggregateOutcome {
            broadcast_scalars: equivalent,
            synced_scalars: equivalent,
            total_scalars: global.len(),
        }
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<StdRng>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_unbiased_in_expectation() {
        let mut q = Qsgd::new(QsgdConfig { levels: 4, seed: 1 });
        let update = vec![0.3f32, -0.7, 0.05, 0.0];
        let trials = 4000;
        let mut mean = vec![0.0f64; update.len()];
        for _ in 0..trials {
            let quantized = q.quantize(&update);
            for (m, v) in mean.iter_mut().zip(&quantized) {
                *m += f64::from(*v) / trials as f64;
            }
        }
        for (m, v) in mean.iter().zip(&update) {
            assert!((m - f64::from(*v)).abs() < 0.02, "{m} vs {v}");
        }
    }

    #[test]
    fn zero_update_quantizes_to_zero() {
        let mut q = Qsgd::default();
        assert_eq!(q.quantize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn quantized_values_are_on_the_grid() {
        let mut q = Qsgd::new(QsgdConfig { levels: 4, seed: 2 });
        let update = vec![0.5f32, -0.25, 0.1];
        let norm = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        for v in q.quantize(&update) {
            let level = (v.abs() / norm * 4.0).round();
            assert!((v.abs() / norm * 4.0 - level).abs() < 1e-5, "off-grid value {v}");
        }
    }

    #[test]
    fn upload_volume_reflects_bit_width() {
        // 15 levels -> 4 magnitude bits + 1 sign = 5 bits/scalar.
        let mut q = Qsgd::default();
        assert_eq!(q.bits_per_scalar(), 5.0);
        let locals = vec![vec![0.0; 320]];
        let up = q.prepare_uploads(0, &locals, &vec![0.0; 320]);
        // 320 * 5 / 32 = 50 scalar-equivalents, + 1 for the norm.
        assert_eq!(up, vec![51]);
    }

    #[test]
    fn aggregate_moves_global_toward_locals() {
        let mut q = Qsgd::default();
        let mut global = vec![0.0f32; 8];
        let locals = vec![vec![1.0f32; 8], vec![1.0f32; 8]];
        q.aggregate(0, &locals, &[0, 1], &[true, true], &mut global);
        // Quantization noise allowed, but the direction must be right.
        assert!(global.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn sparsification_ratio_matches_compression() {
        let mut q = Qsgd::default();
        let mut global = vec![0.0f32; 32];
        let locals = vec![vec![0.5f32; 32]];
        let out = q.aggregate(0, &locals, &[0], &[true], &mut global);
        // 5/32 of full volume -> ratio ~ 1 - 5/32.
        let ratio = 1.0 - out.synced_scalars as f64 / out.total_scalars as f64;
        assert!((ratio - (1.0 - 5.0 / 32.0)).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        Qsgd::new(QsgdConfig { levels: 0, seed: 0 });
    }
}
