//! Top-K magnitude sparsification with client-side error accumulation
//! (Aji & Heafield, 2017; Lin et al., DGC) — the classic *magnitude-based*
//! sparsifier, included as an extra baseline to contrast with the paper's
//! *pattern-based* sparsifiers (APF's stagnation, FedSU's linearity).
//!
//! Each client uploads only the `k` largest-magnitude entries of its
//! residual-corrected update; the remainder accumulates locally and is
//! uploaded once it grows large enough (error feedback in the classical
//! sparsification sense).

use fedsu_fl::{AggregateOutcome, SyncStrategy};
use fedsu_tensor::simd;
use serde::{Deserialize, Serialize};

/// Top-K hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKConfig {
    /// Fraction of scalars uploaded per client per round (0 < f <= 1).
    pub fraction: f64,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig { fraction: 0.25 }
    }
}

/// The Top-K strategy.
#[derive(Debug, Clone)]
pub struct TopK {
    config: TopKConfig,
    /// Per-client residuals (unsent update mass).
    residuals: Vec<Vec<f32>>,
    /// Round scratch: the averaged sparse update (reused across rounds).
    mean_scratch: Vec<f32>,
    /// Round scratch: magnitude sort order (reused across rounds).
    order_scratch: Vec<usize>,
    /// Round scratch: residual magnitudes used as sort keys.
    mag_scratch: Vec<f32>,
}

impl TopK {
    /// Creates Top-K with the given config.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn new(config: TopKConfig) -> Self {
        assert!(
            config.fraction > 0.0 && config.fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        TopK {
            config,
            residuals: Vec::new(),
            mean_scratch: Vec::new(),
            order_scratch: Vec::new(),
            mag_scratch: Vec::new(),
        }
    }

    fn k_of(&self, n: usize) -> usize {
        ((n as f64 * self.config.fraction).ceil() as usize).clamp(1, n)
    }

    fn ensure_capacity(&mut self, n_clients: usize, n_params: usize) {
        if self.residuals.len() != n_clients
            || self.residuals.first().is_some_and(|r| r.len() != n_params)
        {
            self.residuals.resize_with(n_clients, Vec::new);
            for r in &mut self.residuals {
                r.clear();
                r.resize(n_params, 0.0);
            }
        }
    }
}

impl Default for TopK {
    fn default() -> Self {
        TopK::new(TopKConfig::default())
    }
}

impl SyncStrategy for TopK {
    fn name(&self) -> &str {
        "topk"
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        self.ensure_capacity(locals.len(), global.len());
        // Indices are not mask-derivable by the server, so each uploaded
        // scalar carries index + value (2 scalar-equivalents).
        out.clear();
        out.resize(locals.len(), (self.k_of(global.len()) * 2) as u64);
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        self.ensure_capacity(locals.len(), global.len());
        let n = global.len();
        let k = self.k_of(n);
        let inv = 1.0 / selected.len().max(1) as f32;

        let level = simd::simd_level();
        let mut mean_sparse = std::mem::take(&mut self.mean_scratch);
        mean_sparse.clear();
        mean_sparse.resize(n, 0.0);
        let mut order = std::mem::take(&mut self.order_scratch);
        order.reserve(n);
        let mut mags = std::mem::take(&mut self.mag_scratch);
        for ((c, local), residual) in locals.iter().enumerate().zip(self.residuals.iter_mut()) {
            if !active.get(c).copied().unwrap_or(false) {
                continue;
            }
            // Residual-corrected update.
            simd::add_diff_with(level, residual, local, global);
            if !selected.contains(&c) {
                continue;
            }
            // Pick the k largest-magnitude entries: one vectorized |·| scan
            // produces the sort keys, then the comparator reads plain f32s.
            mags.clear();
            mags.resize(n, 0.0);
            simd::abs_into_with(level, &mut mags, residual);
            order.clear();
            order.extend(0..n);
            order.sort_by(|&a, &b| {
                let ma = mags.get(a).copied().unwrap_or(0.0);
                let mb = mags.get(b).copied().unwrap_or(0.0);
                mb.total_cmp(&ma)
            });
            for &j in order.iter().take(k) {
                if let (Some(m), Some(r)) = (mean_sparse.get_mut(j), residual.get_mut(j)) {
                    *m += *r * inv;
                    *r = 0.0;
                }
            }
        }
        simd::add_assign_with(level, global, &mean_sparse);
        self.mean_scratch = mean_sparse;
        self.order_scratch = order;
        self.mag_scratch = mags;
        AggregateOutcome {
            broadcast_scalars: (2 * k).min(n),
            synced_scalars: (2 * k).min(n),
            total_scalars: n,
        }
    }

    fn state_bytes(&self) -> usize {
        self.residuals.first().map_or(0, |r| r.len() * std::mem::size_of::<f32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_round(topk: &mut TopK, locals: &[Vec<f32>], global: &mut Vec<f32>, round: usize) -> AggregateOutcome {
        let sel: Vec<usize> = (0..locals.len()).collect();
        let active = vec![true; locals.len()];
        topk.prepare_uploads(round, locals, global);
        topk.aggregate(round, locals, &sel, &active, global)
    }

    #[test]
    fn only_top_entries_move_immediately() {
        let mut t = TopK::new(TopKConfig { fraction: 0.25 }); // k = 1 of 4
        let mut global = vec![0.0f32; 4];
        let locals = vec![vec![0.01, 1.0, 0.02, 0.03]];
        run_round(&mut t, &locals, &mut global, 0);
        assert_eq!(global[1], 1.0);
        assert_eq!(global[0], 0.0);
    }

    #[test]
    fn residual_feedback_eventually_delivers_small_updates() {
        // A small but persistent update accumulates and wins a later round.
        let mut t = TopK::new(TopKConfig { fraction: 0.25 });
        let mut global = vec![0.0f32; 4];
        for round in 0..20 {
            // Scalar 0 drifts steadily by 0.1; others get one-off noise.
            let locals = vec![vec![
                global[0] + 0.1,
                global[1] + if round == 0 { 0.5 } else { 0.0 },
                global[2],
                global[3],
            ]];
            run_round(&mut t, &locals, &mut global, round);
        }
        assert!(global[0] > 1.0, "steady drift must be delivered, got {}", global[0]);
    }

    #[test]
    fn upload_volume_counts_index_value_pairs() {
        let mut t = TopK::new(TopKConfig { fraction: 0.5 });
        let locals = vec![vec![0.0; 10]];
        let up = t.prepare_uploads(0, &locals, &vec![0.0; 10]);
        assert_eq!(up, vec![10]); // k=5, 2 scalar-equivalents each
    }

    #[test]
    fn full_fraction_equals_fedavg_delta() {
        let mut t = TopK::new(TopKConfig { fraction: 1.0 });
        let mut global = vec![1.0f32, 2.0];
        let locals = vec![vec![2.0, 4.0], vec![4.0, 0.0]];
        run_round(&mut t, &locals, &mut global, 0);
        // Mean of (local - global) added to global = mean of locals.
        assert_eq!(global, vec![3.0, 2.0]);
    }

    #[test]
    fn unselected_clients_keep_their_residuals() {
        let mut t = TopK::new(TopKConfig { fraction: 1.0 });
        let mut global = vec![0.0f32];
        let locals = vec![vec![1.0], vec![5.0]];
        t.prepare_uploads(0, &locals, &global);
        // Only client 0 selected; client 1 is active and accumulates.
        t.aggregate(0, &locals, &[0], &[true, true], &mut global);
        assert_eq!(global, vec![1.0]);
        assert_eq!(t.residuals[1][0], 5.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn invalid_fraction_panics() {
        TopK::new(TopKConfig { fraction: 0.0 });
    }
}
