//! CMFL (Communication-Mitigated Federated Learning, Luping et al.,
//! ICDCS'19): a client transmits its round update only when a sufficient
//! fraction of the update's element-wise signs agree with the previous
//! round's *global* update.

use fedsu_fl::{AggregateOutcome, SyncStrategy};
use serde::{Deserialize, Serialize};

/// CMFL hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmflConfig {
    /// Minimum fraction of sign-consistent entries required to transmit
    /// (paper default 0.8).
    pub relevance_threshold: f64,
}

impl Default for CmflConfig {
    fn default() -> Self {
        CmflConfig { relevance_threshold: 0.8 }
    }
}

/// The CMFL strategy.
#[derive(Debug, Clone)]
pub struct Cmfl {
    config: CmflConfig,
    /// Previous round's global update (`None` before the first aggregation:
    /// every client transmits).
    prev_global_update: Option<Vec<f32>>,
    /// Phase-A relevance decisions, indexed by client id.
    transmits: Vec<bool>,
    /// Round scratch: one client's raw update (reused across rounds).
    update_scratch: Vec<f32>,
    /// Round scratch: the pre-aggregation global (reused across rounds).
    old_scratch: Vec<f32>,
    /// Round scratch: the transmitting subset of `selected`.
    transmitting_scratch: Vec<usize>,
}

impl Cmfl {
    /// Creates CMFL with the given config.
    pub fn new(config: CmflConfig) -> Self {
        Cmfl {
            config,
            prev_global_update: None,
            transmits: Vec::new(),
            update_scratch: Vec::new(),
            old_scratch: Vec::new(),
            transmitting_scratch: Vec::new(),
        }
    }

    /// Fraction of entries of `update` whose sign matches `reference`.
    /// Zero entries count as agreeing (no direction to contradict).
    fn relevance(update: &[f32], reference: &[f32]) -> f64 {
        debug_assert_eq!(update.len(), reference.len());
        if update.is_empty() {
            return 1.0;
        }
        let agree = update
            .iter()
            .zip(reference)
            .filter(|(u, r)| u.signum() == r.signum() || **u == 0.0 || **r == 0.0)
            .count();
        agree as f64 / update.len() as f64
    }
}

impl Default for Cmfl {
    fn default() -> Self {
        Cmfl::new(CmflConfig::default())
    }
}

impl SyncStrategy for Cmfl {
    fn name(&self) -> &str {
        "cmfl"
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        self.transmits.clear();
        self.transmits.reserve(locals.len());
        match &self.prev_global_update {
            None => self.transmits.resize(locals.len(), true),
            Some(reference) => {
                let mut update = std::mem::take(&mut self.update_scratch);
                update.reserve(global.len());
                for local in locals {
                    update.clear();
                    update.extend(local.iter().zip(global).map(|(l, g)| l - g));
                    self.transmits.push(
                        Self::relevance(&update, reference) >= self.config.relevance_threshold,
                    );
                }
                self.update_scratch = update;
            }
        }
        out.clear();
        out.extend(self.transmits.iter().map(|&t| if t { global.len() as u64 } else { 0 }));
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        let mut old_global = std::mem::take(&mut self.old_scratch);
        old_global.clear();
        old_global.extend_from_slice(global);
        let mut transmitting = std::mem::take(&mut self.transmitting_scratch);
        transmitting.clear();
        transmitting.extend(
            selected
                .iter()
                .copied()
                .filter(|&c| self.transmits.get(c).copied().unwrap_or(true)),
        );
        if !transmitting.is_empty() {
            let inv = 1.0 / transmitting.len() as f32;
            for g in global.iter_mut() {
                *g = 0.0;
            }
            for &c in &transmitting {
                for (g, &v) in global.iter_mut().zip(&locals[c]) {
                    *g += v * inv;
                }
            }
        }
        let mut prev = self.prev_global_update.take().unwrap_or_default();
        prev.clear();
        prev.extend(global.iter().zip(&old_global).map(|(n, o)| n - o));
        self.prev_global_update = Some(prev);

        // Sparsification accounting: the fraction of selected clients that
        // skipped transmission scales the effective synchronized volume.
        let frac = if selected.is_empty() {
            0.0
        } else {
            transmitting.len() as f64 / selected.len() as f64
        };
        self.old_scratch = old_global;
        self.transmitting_scratch = transmitting;
        AggregateOutcome {
            broadcast_scalars: global.len(),
            synced_scalars: (global.len() as f64 * frac).round() as usize,
            total_scalars: global.len(),
        }
    }

    fn state_bytes(&self) -> usize {
        self.prev_global_update.as_ref().map_or(0, |v| v.len() * std::mem::size_of::<f32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_round_everyone_transmits() {
        let mut s = Cmfl::default();
        let locals = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let up = s.prepare_uploads(0, &locals, &[0.0, 0.0]);
        assert_eq!(up, vec![2, 2]);
    }

    #[test]
    fn relevance_counts_sign_agreement() {
        assert_eq!(Cmfl::relevance(&[1.0, -1.0], &[2.0, -3.0]), 1.0);
        assert_eq!(Cmfl::relevance(&[1.0, -1.0], &[2.0, 3.0]), 0.5);
        assert_eq!(Cmfl::relevance(&[], &[]), 1.0);
        // Zeros never contradict.
        assert_eq!(Cmfl::relevance(&[0.0, 1.0], &[-5.0, 1.0]), 1.0);
    }

    #[test]
    fn irrelevant_client_is_withheld() {
        let mut s = Cmfl::new(CmflConfig { relevance_threshold: 0.8 });
        // Seed the reference update: global moves by +1 on both coords.
        let locals0 = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let mut global = vec![0.0, 0.0];
        s.prepare_uploads(0, &locals0, &global);
        s.aggregate(0, &locals0, &[0, 1], &[true, true], &mut global);
        assert_eq!(global, vec![1.0, 1.0]);

        // Client 0 moves with the trend (+), client 1 against (-).
        let locals1 = vec![vec![2.0, 2.0], vec![0.0, 0.0]];
        let up = s.prepare_uploads(1, &locals1, &global);
        assert_eq!(up[0], 2);
        assert_eq!(up[1], 0);

        let out = s.aggregate(1, &locals1, &[0, 1], &[true, true], &mut global);
        // Only client 0 aggregated.
        assert_eq!(global, vec![2.0, 2.0]);
        assert_eq!(out.synced_scalars, 1); // 50% of 2 scalars
    }

    #[test]
    fn all_withheld_leaves_global_unchanged() {
        let mut s = Cmfl::new(CmflConfig { relevance_threshold: 1.0 });
        let locals0 = vec![vec![1.0, 1.0]];
        let mut global = vec![0.0, 0.0];
        s.prepare_uploads(0, &locals0, &global);
        s.aggregate(0, &locals0, &[0], &[true], &mut global);
        // Now move against the trend.
        let locals1 = vec![vec![0.0, 0.0]];
        s.prepare_uploads(1, &locals1, &global);
        let out = s.aggregate(1, &locals1, &[0], &[true], &mut global);
        assert_eq!(global, vec![1.0, 1.0]);
        assert_eq!(out.synced_scalars, 0);
    }

    #[test]
    fn state_bytes_reflect_reference_update() {
        let mut s = Cmfl::default();
        assert_eq!(s.state_bytes(), 0);
        let locals = vec![vec![1.0; 8]];
        let mut g = vec![0.0; 8];
        s.prepare_uploads(0, &locals, &g);
        s.aggregate(0, &locals, &[0], &[true], &mut g);
        assert_eq!(s.state_bytes(), 32);
    }
}
