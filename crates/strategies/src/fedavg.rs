//! Plain FedAvg: every client uploads its full model every round.

use fedsu_fl::strategy::average_into;
use fedsu_fl::{AggregateOutcome, SyncStrategy};

/// Full-model synchronization (the paper's FedAvg baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Creates the FedAvg strategy.
    pub fn new() -> Self {
        FedAvg
    }
}

impl SyncStrategy for FedAvg {
    fn name(&self) -> &str {
        "fedavg"
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        _global: &[f32],
        out: &mut Vec<u64>,
    ) {
        out.clear();
        out.extend(locals.iter().map(|l| l.len() as u64));
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        average_into(locals, selected, global);
        AggregateOutcome {
            broadcast_scalars: global.len(),
            synced_scalars: global.len(),
            total_scalars: global.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uploads_full_model() {
        let mut s = FedAvg::new();
        let locals = vec![vec![0.0; 5], vec![0.0; 5]];
        assert_eq!(s.prepare_uploads(0, &locals, &[0.0; 5]), vec![5, 5]);
    }

    #[test]
    fn aggregates_mean_of_selected() {
        let mut s = FedAvg::new();
        let locals = vec![vec![2.0, 4.0], vec![6.0, 8.0], vec![-100.0, -100.0]];
        let mut global = vec![0.0, 0.0];
        let out = s.aggregate(0, &locals, &[0, 1], &[true, true, true], &mut global);
        assert_eq!(global, vec![4.0, 6.0]);
        assert_eq!(out.synced_scalars, 2);
        assert_eq!(out.broadcast_scalars, 2);
        assert_eq!(out.total_scalars, 2);
    }

    #[test]
    fn has_no_resident_state() {
        assert_eq!(FedAvg::new().state_bytes(), 0);
        assert!(FedAvg::new().join_state().is_none());
    }
}
