//! APF (Adaptive Parameter Freezing, Chen et al., ICDCS'21): parameters
//! whose *effective perturbation* falls below a stability threshold are
//! considered converged and frozen — excluded from synchronization — for
//! additively-growing periods (TCP-style), unfreezing to re-check stability.
//!
//! Effective perturbation of a scalar is `|⟨u⟩| / ⟨|u|⟩`, the EMA-smoothed
//! ratio between the magnitude of the accumulated update and the accumulated
//! update magnitude: near 1 for a steadily-moving parameter, near 0 for one
//! zigzagging around a converged value.

use fedsu_fl::{AggregateOutcome, SyncStrategy};
use serde::{Deserialize, Serialize};

/// APF hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApfConfig {
    /// Effective-perturbation threshold below which a parameter freezes
    /// (paper default 0.05).
    pub stability_threshold: f64,
    /// EMA decay for the perturbation statistics.
    pub ema_decay: f32,
    /// Rounds a parameter must be observed before it may freeze.
    pub warmup_rounds: usize,
    /// Freezing-period increment per consecutive stable check (rounds).
    pub period_step: u16,
    /// Upper bound on the freezing period (rounds).
    pub max_period: u16,
}

impl Default for ApfConfig {
    fn default() -> Self {
        ApfConfig {
            stability_threshold: 0.05,
            ema_decay: 0.9,
            warmup_rounds: 3,
            period_step: 1,
            max_period: 64,
        }
    }
}

/// The APF strategy.
#[derive(Debug, Clone)]
pub struct Apf {
    config: ApfConfig,
    /// EMA of the per-round update, per scalar.
    ema_update: Vec<f32>,
    /// EMA of the absolute per-round update, per scalar.
    ema_abs_update: Vec<f32>,
    /// Rounds remaining in the current freeze (0 = unfrozen).
    freeze_remaining: Vec<u16>,
    /// Current freezing-period length (grows additively while stable).
    freeze_period: Vec<u16>,
    /// Rounds each scalar spent frozen (skip statistics).
    frozen_rounds: Vec<u64>,
    rounds_seen: usize,
    /// Phase-A cache: unfrozen scalar count this round.
    unfrozen_count: usize,
}

impl Apf {
    /// Creates APF with the given config.
    pub fn new(config: ApfConfig) -> Self {
        Apf {
            config,
            ema_update: Vec::new(),
            ema_abs_update: Vec::new(),
            freeze_remaining: Vec::new(),
            freeze_period: Vec::new(),
            frozen_rounds: Vec::new(),
            rounds_seen: 0,
            unfrozen_count: 0,
        }
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.ema_update.len() != n {
            self.ema_update.clear();
            self.ema_update.resize(n, 0.0);
            self.ema_abs_update.clear();
            self.ema_abs_update.resize(n, 0.0);
            self.freeze_remaining.clear();
            self.freeze_remaining.resize(n, 0);
            self.freeze_period.clear();
            self.freeze_period.resize(n, 0);
            self.frozen_rounds.clear();
            self.frozen_rounds.resize(n, 0);
        }
    }

    /// Number of currently frozen scalars.
    pub fn frozen_count(&self) -> usize {
        self.freeze_remaining.iter().filter(|&&r| r > 0).count()
    }
}

impl Default for Apf {
    fn default() -> Self {
        Apf::new(ApfConfig::default())
    }
}

impl SyncStrategy for Apf {
    fn name(&self) -> &str {
        "apf"
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        self.ensure_capacity(global.len());
        self.unfrozen_count = self.freeze_remaining.iter().filter(|&&r| r == 0).count();
        out.clear();
        out.resize(locals.len(), self.unfrozen_count as u64);
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        self.ensure_capacity(global.len());
        let n = global.len();
        let inv = 1.0 / selected.len().max(1) as f32;
        let theta = self.config.ema_decay;
        let mut synced = 0usize;

        for j in 0..n {
            if self.freeze_remaining[j] > 0 {
                // Frozen: hold the global value; local drift is discarded.
                self.freeze_remaining[j] -= 1;
                self.frozen_rounds[j] += 1;
                continue;
            }
            synced += 1;
            let old = global[j];
            let mut avg = 0.0f32;
            for &c in selected {
                avg += locals[c][j] * inv;
            }
            global[j] = avg;
            let u = avg - old;
            self.ema_update[j] = theta * self.ema_update[j] + (1.0 - theta) * u;
            self.ema_abs_update[j] = theta * self.ema_abs_update[j] + (1.0 - theta) * u.abs();

            if self.rounds_seen >= self.config.warmup_rounds {
                let perturbation = if self.ema_abs_update[j] > f32::EPSILON {
                    f64::from(self.ema_update[j].abs()) / f64::from(self.ema_abs_update[j])
                } else {
                    0.0
                };
                if perturbation < self.config.stability_threshold {
                    // Stable: freeze for an additively-grown period.
                    self.freeze_period[j] =
                        (self.freeze_period[j] + self.config.period_step).min(self.config.max_period);
                    self.freeze_remaining[j] = self.freeze_period[j];
                } else {
                    // Unstable: reset the additive-increase state.
                    self.freeze_period[j] = 0;
                }
            }
        }
        self.rounds_seen += 1;
        AggregateOutcome { broadcast_scalars: synced, synced_scalars: synced, total_scalars: n }
    }

    fn state_bytes(&self) -> usize {
        self.ema_update.len() * std::mem::size_of::<f32>() * 2
            + self.freeze_remaining.len() * std::mem::size_of::<u16>() * 2
    }

    fn skip_fractions(&self) -> Option<Vec<f64>> {
        if self.rounds_seen == 0 {
            return None;
        }
        Some(
            self.frozen_rounds
                .iter()
                .map(|&f| f as f64 / self.rounds_seen as f64)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_round(apf: &mut Apf, locals: &[Vec<f32>], global: &mut Vec<f32>, round: usize) -> AggregateOutcome {
        let sel: Vec<usize> = (0..locals.len()).collect();
        apf.prepare_uploads(round, locals, global);
        let active = vec![true; locals.len()];
        apf.aggregate(round, locals, &sel, &active, global)
    }

    #[test]
    fn unfrozen_params_average_normally() {
        let mut apf = Apf::default();
        let locals = vec![vec![2.0, 4.0], vec![4.0, 6.0]];
        let mut global = vec![0.0, 0.0];
        let out = run_round(&mut apf, &locals, &mut global, 0);
        assert_eq!(global, vec![3.0, 5.0]);
        assert_eq!(out.synced_scalars, 2);
    }

    #[test]
    fn zigzagging_parameter_freezes_and_holds() {
        // Scalar 0 oscillates (converged); scalar 1 moves steadily.
        let mut apf = Apf::new(ApfConfig { warmup_rounds: 2, stability_threshold: 0.1, ..ApfConfig::default() });
        let mut global = vec![0.0, 0.0];
        let mut frozen_seen = false;
        for round in 0..30 {
            let osc = if round % 2 == 0 { 0.1 } else { -0.1 };
            let locals = vec![vec![global[0] + osc, global[1] + 1.0]];
            let out = run_round(&mut apf, &locals, &mut global, round);
            if out.synced_scalars < 2 {
                frozen_seen = true;
                // The moving scalar must never be the frozen one.
                assert!(out.synced_scalars >= 1);
            }
        }
        assert!(frozen_seen, "oscillating scalar should freeze");
        assert!(apf.frozen_count() <= 1);
        // The steady scalar kept moving.
        assert!(global[1] > 20.0, "steady scalar froze wrongly: {}", global[1]);
    }

    #[test]
    fn freeze_period_grows_additively() {
        let mut apf = Apf::new(ApfConfig { warmup_rounds: 1, stability_threshold: 0.1, ..ApfConfig::default() });
        let mut global = vec![0.0];
        // Perfectly oscillating scalar: every check passes.
        let mut freezes = Vec::new();
        let mut prev_frozen = false;
        for round in 0..40 {
            let osc = if round % 2 == 0 { 0.1 } else { -0.1 };
            let locals = vec![vec![global[0] + osc]];
            let out = run_round(&mut apf, &locals, &mut global, round);
            let frozen = out.synced_scalars == 0;
            if frozen && !prev_frozen {
                freezes.push(round);
            }
            prev_frozen = frozen;
        }
        // Gaps between successive freeze-starts should grow.
        assert!(freezes.len() >= 2, "expected repeated freezing: {freezes:?}");
        let gaps: Vec<usize> = freezes.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.windows(2).all(|w| w[1] >= w[0]), "gaps should not shrink: {gaps:?}");
    }

    #[test]
    fn local_drift_of_frozen_params_is_discarded() {
        let mut apf = Apf::new(ApfConfig { warmup_rounds: 0, ..ApfConfig::default() });
        let mut global = vec![5.0];
        // Round 0: zero update -> perturbation 0 -> freezes immediately.
        let locals = vec![vec![5.0]];
        run_round(&mut apf, &locals, &mut global, 0);
        assert_eq!(apf.frozen_count(), 1);
        // Round 1: client drifts wildly; frozen scalar must hold.
        let locals = vec![vec![100.0]];
        run_round(&mut apf, &locals, &mut global, 1);
        assert_eq!(global, vec![5.0]);
    }

    #[test]
    fn uploads_count_only_unfrozen() {
        let mut apf = Apf::new(ApfConfig { warmup_rounds: 0, ..ApfConfig::default() });
        let mut global = vec![1.0, 2.0];
        let locals = vec![vec![1.0, 2.0]];
        run_round(&mut apf, &locals, &mut global, 0); // both freeze (zero updates)
        let up = apf.prepare_uploads(1, &locals, &global);
        assert_eq!(up, vec![0]);
    }

    #[test]
    fn skip_fractions_track_frozen_time() {
        let mut apf = Apf::new(ApfConfig { warmup_rounds: 0, ..ApfConfig::default() });
        assert!(apf.skip_fractions().is_none());
        let mut global = vec![0.0];
        let locals = vec![vec![0.0]];
        for round in 0..10 {
            run_round(&mut apf, &locals, &mut global, round);
        }
        let frac = apf.skip_fractions().unwrap()[0];
        assert!(frac > 0.3, "stagnant scalar should be frozen much of the time, got {frac}");
    }

    #[test]
    fn state_bytes_scale_with_model() {
        let mut apf = Apf::default();
        let mut global = vec![0.0; 100];
        let locals = vec![vec![0.0; 100]];
        run_round(&mut apf, &locals, &mut global, 0);
        assert_eq!(apf.state_bytes(), 100 * 4 * 2 + 100 * 2 * 2);
    }
}
