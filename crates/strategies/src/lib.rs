//! # fedsu-strategies
//!
//! The three baseline synchronization strategies the FedSU paper compares
//! against (Sec. VI-A):
//!
//! * [`FedAvg`] — full-model synchronization every round (McMahan et al.);
//! * [`Cmfl`] — a client withholds its whole update when too few of its
//!   update directions agree with the previous global update (Luping et
//!   al., ICDCS'19; default relevance threshold 0.8);
//! * [`Apf`] — per-parameter adaptive freezing: parameters whose effective
//!   perturbation falls below a stability threshold are frozen for
//!   additively-growing periods (Chen et al., ICDCS'21; default threshold
//!   0.05).
//!
//! Two extension baselines go beyond the paper: [`Qsgd`] (stochastic
//! quantization, the compression family of Sec. II-B) and [`TopK`]
//! (magnitude sparsification with residual feedback).
//!
//! All of them implement [`fedsu_fl::SyncStrategy`] and can be plugged into
//! [`fedsu_fl::Experiment`] interchangeably with FedSU itself.

#![warn(missing_docs)]

mod apf;
mod cmfl;
mod fedavg;
mod qsgd;
mod topk;

pub use apf::{Apf, ApfConfig};
pub use cmfl::{Cmfl, CmflConfig};
pub use fedavg::FedAvg;
pub use qsgd::{Qsgd, QsgdConfig};
pub use topk::{TopK, TopKConfig};
