//! Cross-strategy property tests: every baseline must satisfy the runtime
//! contract under arbitrary dynamics.

use fedsu_fl::SyncStrategy;
use fedsu_strategies::{Apf, ApfConfig, Cmfl, CmflConfig, FedAvg, Qsgd, QsgdConfig, TopK, TopKConfig};
use proptest::prelude::*;

fn strategies() -> Vec<Box<dyn SyncStrategy>> {
    vec![
        Box::new(FedAvg::new()),
        Box::new(Cmfl::new(CmflConfig::default())),
        Box::new(Apf::new(ApfConfig::default())),
        Box::new(Qsgd::new(QsgdConfig::default())),
        Box::new(TopK::new(TopKConfig::default())),
    ]
}

/// Deterministic pseudo-random local update.
fn update(seed: u64, round: usize, client: usize, j: usize) -> f32 {
    let x = seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add((round * 31 + client * 7 + j) as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    ((x >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn contract_holds_for_all_strategies(seed in 0u64..500, n in 1usize..12, clients in 1usize..5, rounds in 1usize..15) {
        for mut strategy in strategies() {
            let mut global = vec![0.0f32; n];
            let selected: Vec<usize> = (0..clients).collect();
            let active = vec![true; clients];
            for round in 0..rounds {
                let locals: Vec<Vec<f32>> = (0..clients)
                    .map(|c| (0..n).map(|j| global[j] + update(seed, round, c, j)).collect())
                    .collect();
                let ups = strategy.prepare_uploads(round, &locals, &global);
                // One volume entry per client; never more than 2x the model
                // (index+value pairs are the worst case).
                prop_assert_eq!(ups.len(), clients, "{}", strategy.name());
                for &u in &ups {
                    prop_assert!(u <= 2 * n as u64, "{} uploads {} of {}", strategy.name(), u, n);
                }
                let out = strategy.aggregate(round, &locals, &selected, &active, &mut global);
                prop_assert_eq!(out.total_scalars, n, "{}", strategy.name());
                prop_assert!(out.synced_scalars <= out.total_scalars, "{}", strategy.name());
                prop_assert!(out.broadcast_scalars <= out.total_scalars, "{}", strategy.name());
                prop_assert!(global.iter().all(|v| v.is_finite()), "{}", strategy.name());
            }
            // Skip fractions, when reported, are probabilities.
            if let Some(sf) = strategy.skip_fractions() {
                prop_assert!(sf.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn identical_locals_fixpoint(seed in 0u64..500, n in 1usize..8) {
        // If every client reports exactly the current global, no strategy
        // may move it (QSGD rounds a zero update to zero exactly).
        for mut strategy in strategies() {
            let global_init: Vec<f32> = (0..n).map(|j| update(seed, 0, 0, j)).collect();
            let mut global = global_init.clone();
            let locals = vec![global.clone(); 3];
            strategy.prepare_uploads(0, &locals, &global);
            strategy.aggregate(0, &locals, &[0, 1, 2], &[true; 3], &mut global);
            for (a, b) in global.iter().zip(&global_init) {
                prop_assert!((a - b).abs() < 1e-6, "{} moved a fixpoint", strategy.name());
            }
        }
    }

    #[test]
    fn unanimous_shift_is_applied_by_all(seed in 0u64..500, n in 2usize..8, shift in 0.05f32..0.5) {
        // All clients agree on the same shift for every scalar: every
        // strategy should move the global toward it (fully or partially).
        for mut strategy in strategies() {
            let mut global = vec![0.0f32; n];
            let _ = seed;
            for round in 0..6 {
                let locals: Vec<Vec<f32>> = (0..3).map(|_| global.iter().map(|g| g + shift).collect()).collect();
                strategy.prepare_uploads(round, &locals, &global);
                strategy.aggregate(round, &locals, &[0, 1, 2], &[true; 3], &mut global);
            }
            // After several unanimous rounds, all strategies have moved
            // significantly in the right direction.
            let mean: f32 = global.iter().sum::<f32>() / n as f32;
            prop_assert!(mean > shift, "{} only moved to {mean} (shift {shift})", strategy.name());
        }
    }
}
